package mis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mis2go/internal/graph"
	"mis2go/internal/hash"
)

func randomGraph(n, m int, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))})
	}
	return graph.FromEdges(n, edges)
}

func pathGraph(n int) *graph.CSR {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	return graph.FromEdges(n, edges)
}

func grid2D(nx, ny int) *graph.CSR {
	idx := func(x, y int) int32 { return int32(y*nx + x) }
	var edges []graph.Edge
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				edges = append(edges, graph.Edge{U: idx(x, y), V: idx(x+1, y)})
			}
			if y+1 < ny {
				edges = append(edges, graph.Edge{U: idx(x, y), V: idx(x, y+1)})
			}
		}
	}
	return graph.FromEdges(nx*ny, edges)
}

func setsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- Figure 1 graph: the paper's worked example (tree 1-2-3-4 with leaves
// 5,6 on 4), 0-indexed here. ---

func fig1Graph() *graph.CSR {
	return graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 3, V: 5}})
}

func TestMIS2OnFig1Graph(t *testing.T) {
	g := fig1Graph()
	res := MIS2(g, Options{})
	if err := CheckMIS2(g, res.InSet); err != nil {
		t.Fatal(err)
	}
	// On this tree any valid MIS-2 has exactly 2 members (the graph has
	// diameter 4 and vertices 0 and one of {3,4,5} can both be chosen).
	if len(res.InSet) != 2 {
		t.Fatalf("MIS-2 size = %d, want 2 (set %v)", len(res.InSet), res.InSet)
	}
	if res.Iterations < 1 {
		t.Fatal("must report at least one iteration")
	}
}

func TestMIS2SmallShapes(t *testing.T) {
	shapes := map[string]*graph.CSR{
		"empty":         graph.FromEdges(0, nil),
		"single":        graph.FromEdges(1, nil),
		"isolated":      graph.FromEdges(5, nil),
		"edge":          graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}),
		"triangle":      graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}),
		"star":          graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}, {U: 0, V: 5}}),
		"path10":        pathGraph(10),
		"grid5x5":       grid2D(5, 5),
		"two-triangles": graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5}}),
	}
	for name, g := range shapes {
		res := MIS2(g, Options{})
		if err := CheckMIS2(g, res.InSet); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	// A graph with no edges: every vertex is in the MIS-2.
	if got := len(MIS2(graph.FromEdges(5, nil), Options{}).InSet); got != 5 {
		t.Fatalf("isolated graph MIS-2 size = %d, want 5", got)
	}
	// Star: exactly one vertex possible.
	star := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}, {U: 0, V: 5}})
	if got := len(MIS2(star, Options{}).InSet); got != 1 {
		t.Fatalf("star MIS-2 size = %d, want 1", got)
	}
}

func TestMIS2ValidOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		n := 5 + int(uint64(seed)%200)
		g := randomGraph(n, 3*n, seed)
		for _, kind := range []hash.Kind{hash.XorStar, hash.Xor, hash.Fixed} {
			res := MIS2(g, Options{Hash: kind})
			if CheckMIS2(g, res.InSet) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAllVariantsValidAndSized(t *testing.T) {
	g := grid2D(30, 30)
	sizes := map[Variant]int{}
	for v := Variant(0); v < NumVariants; v++ {
		res := MIS2Variant(g, v, 0)
		if err := CheckMIS2(g, res.InSet); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		sizes[v] = len(res.InSet)
	}
	// All rungs after Baseline share the xorshift* priority sequence; the
	// worklist/packed/SIMD rungs implement the identical algorithm and
	// must agree exactly.
	a := MIS2Variant(g, VariantWorklists, 0)
	b := MIS2Variant(g, VariantPacked, 0)
	c := MIS2Variant(g, VariantSIMD, 0)
	if !setsEqual(a.InSet, b.InSet) || !setsEqual(b.InSet, c.InSet) {
		t.Fatal("worklist/packed/SIMD variants disagree on the result set")
	}
	if a.Iterations != b.Iterations || b.Iterations != c.Iterations {
		t.Fatal("worklist/packed/SIMD variants disagree on iterations")
	}
}

func TestDeterminismAcrossThreadCounts(t *testing.T) {
	g := randomGraph(500, 2500, 42)
	ref := MIS2(g, Options{Threads: 1})
	for _, threads := range []int{2, 3, 7, 16, 0} {
		got := MIS2(g, Options{Threads: threads})
		if !setsEqual(ref.InSet, got.InSet) {
			t.Fatalf("threads=%d: result differs from single-threaded run", threads)
		}
		if got.Iterations != ref.Iterations {
			t.Fatalf("threads=%d: iterations %d != %d", threads, got.Iterations, ref.Iterations)
		}
	}
}

func TestDeterminismAcrossRepeatedRuns(t *testing.T) {
	g := randomGraph(300, 1500, 7)
	ref := MIS2(g, Options{})
	for i := 0; i < 5; i++ {
		if !setsEqual(ref.InSet, MIS2(g, Options{}).InSet) {
			t.Fatal("repeated runs disagree")
		}
	}
}

func TestVariantDeterminismAcrossThreads(t *testing.T) {
	g := randomGraph(400, 1600, 11)
	for v := Variant(0); v < NumVariants; v++ {
		ref := MIS2Variant(g, v, 1)
		got := MIS2Variant(g, v, 8)
		if !setsEqual(ref.InSet, got.InSet) {
			t.Fatalf("%v: thread count changes result", v)
		}
	}
}

// --- Lemma IV.2: MIS-2(G) == MIS-1(G²) under the same priorities. ---

func TestLemmaIV2Equivalence(t *testing.T) {
	f := func(seed int64) bool {
		n := 5 + int(uint64(seed)%120)
		g := randomGraph(n, 2*n, seed)
		mis2 := MIS2(g, Options{NoSIMD: true})
		luby := LubyMIS1(g.Square(), hash.XorStar, 0)
		return setsEqual(mis2.InSet, luby.InSet) && mis2.Iterations == luby.Iterations
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLubyValidMIS1(t *testing.T) {
	f := func(seed int64) bool {
		n := 5 + int(uint64(seed)%150)
		g := randomGraph(n, 3*n, seed)
		res := LubyMIS1(g, hash.XorStar, 0)
		return CheckMIS1(g, res.InSet) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// --- Bell baseline ---

func TestBellValidMIS2(t *testing.T) {
	f := func(seed int64) bool {
		n := 5 + int(uint64(seed)%150)
		g := randomGraph(n, 3*n, seed)
		res := BellMISK(g, BellOptions{K: 2})
		return CheckMIS2(g, res.InSet) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBellK1IsValidMIS1(t *testing.T) {
	g := randomGraph(200, 800, 3)
	res := BellMISK(g, BellOptions{K: 1})
	if err := CheckMIS1(g, res.InSet); err != nil {
		t.Fatal(err)
	}
}

func TestBellK3Independence(t *testing.T) {
	g := pathGraph(20)
	res := BellMISK(g, BellOptions{K: 3})
	// Any two members of an MIS-3 on a path must be more than 3 apart.
	for i := 1; i < len(res.InSet); i++ {
		if res.InSet[i]-res.InSet[i-1] <= 3 {
			t.Fatalf("MIS-3 members %d and %d too close", res.InSet[i-1], res.InSet[i])
		}
	}
	if len(res.InSet) == 0 {
		t.Fatal("empty MIS-3")
	}
}

func TestBellRehashAgreesWithAlgorithm1Quality(t *testing.T) {
	// Not equality — different algorithms — but both must be valid and
	// of similar size on a regular mesh.
	g := grid2D(40, 40)
	a := BellMISK(g, BellOptions{K: 2, Rehash: true})
	b := MIS2(g, Options{})
	if err := CheckMIS2(g, a.InSet); err != nil {
		t.Fatal(err)
	}
	ra := float64(len(a.InSet)) / float64(len(b.InSet))
	if ra < 0.7 || ra > 1.4 {
		t.Fatalf("quality ratio %f out of range (|bell|=%d, |kk|=%d)", ra, len(a.InSet), len(b.InSet))
	}
}

// --- Packed tuple codec ---

func TestCodecRoundTrip(t *testing.T) {
	f := func(nRaw uint32, vRaw uint32, prio uint64) bool {
		n := int(nRaw%1_000_000) + 1
		v := int32(uint64(vRaw) % uint64(n))
		c := newCodec(n)
		packed := c.pack(prio>>c.idBits, v)
		if packed == tupleIn || packed == tupleOut {
			return false
		}
		return c.id(packed) == v && c.priority(packed) == prio>>c.idBits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecOrderMatchesLexicographic(t *testing.T) {
	c := newCodec(1000)
	type tup struct {
		p uint64
		v int32
	}
	cases := []tup{{p: 0, v: 0}, {p: 0, v: 999}, {p: 1, v: 0}, {p: 5, v: 42}, {p: 5, v: 43}, {p: 1 << 40, v: 7}}
	for i := range cases {
		for j := range cases {
			a, b := cases[i], cases[j]
			wantLess := a.p < b.p || (a.p == b.p && a.v < b.v)
			gotLess := c.pack(a.p, a.v) < c.pack(b.p, b.v)
			if wantLess != gotLess {
				t.Fatalf("order mismatch for %v vs %v", a, b)
			}
		}
	}
}

func TestCodecNeverCollidesWithSentinels(t *testing.T) {
	// Worst case: priority all-ones, id = n-1 (paper eq. 1).
	for _, n := range []int{1, 2, 3, 4, 7, 8, 1023, 1024, 1025, 1 << 20} {
		c := newCodec(n)
		maxPrio := ^uint64(0) >> c.idBits
		packed := c.pack(maxPrio, int32(n-1))
		if packed == tupleOut {
			t.Fatalf("n=%d: max tuple collides with OUT", n)
		}
		if c.pack(0, 0) == tupleIn {
			t.Fatalf("n=%d: min tuple collides with IN", n)
		}
	}
}

// --- Verifier self-tests (failure injection) ---

func TestCheckMIS2CatchesViolations(t *testing.T) {
	g := pathGraph(6)
	// Adjacent members.
	if CheckMIS2(g, []int32{0, 1}) == nil {
		t.Fatal("adjacent members not caught")
	}
	// Distance-2 members.
	if CheckMIS2(g, []int32{0, 2}) == nil {
		t.Fatal("distance-2 members not caught")
	}
	// Non-maximal: {0} leaves vertex 5 at distance 5.
	if CheckMIS2(g, []int32{0}) == nil {
		t.Fatal("non-maximality not caught")
	}
	// Valid: {0, 3} covers everything on a 6-path.
	if err := CheckMIS2(g, []int32{0, 3}); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	// Out of range / duplicates.
	if CheckMIS2(g, []int32{-1}) == nil || CheckMIS2(g, []int32{9}) == nil {
		t.Fatal("out-of-range member not caught")
	}
	if CheckMIS2(g, []int32{0, 0, 3}) == nil {
		t.Fatal("duplicate member not caught")
	}
}

func TestCheckMIS1CatchesViolations(t *testing.T) {
	g := pathGraph(4)
	if CheckMIS1(g, []int32{0, 1}) == nil {
		t.Fatal("adjacent members not caught")
	}
	if CheckMIS1(g, []int32{0}) == nil {
		t.Fatal("non-maximality not caught")
	}
	if err := CheckMIS1(g, []int32{0, 2}); err != nil {
		t.Fatalf("valid MIS-1 rejected: %v", err)
	}
}

// --- Iteration count behaviour (Table I shape) ---

func TestXorStarNeedsFewerIterationsThanXor(t *testing.T) {
	// The paper's headline Table I observation: plain xorshift correlates
	// across iterations and needs more rounds than xorshift*. Check the
	// aggregate over several meshes rather than any single instance.
	totalStar, totalXor := 0, 0
	for _, g := range []*graph.CSR{grid2D(40, 40), grid2D(60, 25), pathGraph(800)} {
		totalStar += MIS2(g, Options{Hash: hash.XorStar}).Iterations
		totalXor += MIS2(g, Options{Hash: hash.Xor}).Iterations
	}
	if totalStar > totalXor {
		t.Fatalf("xorshift* total iterations %d > xorshift %d; expected fewer or equal", totalStar, totalXor)
	}
}

func TestIterationsLogarithmic(t *testing.T) {
	// O(log V) expected iterations: a 100x bigger mesh should add only a
	// few iterations (Table III shows +1-2 per 4-8x growth).
	small := MIS2(grid2D(20, 20), Options{}).Iterations
	big := MIS2(grid2D(200, 200), Options{}).Iterations
	if big > small+8 {
		t.Fatalf("iterations grew from %d to %d; expected logarithmic growth", small, big)
	}
}

func TestMIS2SizeProportionalOnGrids(t *testing.T) {
	// Table III: for a given problem type, |MIS-2| stays proportional
	// to |V| as the grid grows.
	small := len(MIS2(grid2D(30, 30), Options{}).InSet)
	big := len(MIS2(grid2D(60, 60), Options{}).InSet)
	ratio := float64(big) / float64(4*small)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("size scaling ratio %.2f far from 1 (small=%d big=%d)", ratio, small, big)
	}
}

func TestNoSIMDMatchesSIMD(t *testing.T) {
	// Dense-ish graph so the degree heuristic actually enables unrolling.
	g := randomGraph(300, 9000, 5)
	if g.AvgDegree() < MinSIMDDegree {
		t.Skip("graph not dense enough to engage SIMD path")
	}
	a := MIS2(g, Options{})
	b := MIS2(g, Options{NoSIMD: true})
	if !setsEqual(a.InSet, b.InSet) || a.Iterations != b.Iterations {
		t.Fatal("SIMD and scalar paths disagree")
	}
}
