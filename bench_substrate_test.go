// Substrate and extension benchmarks: the kernels underneath the paper's
// experiments (SpMV, SpGEMM, coloring, the aggregation schemes) and the
// extension features (partitioning, MIS-based distance-2 coloring,
// ECL-MIS).
package mis2go

import (
	"fmt"
	"testing"

	"mis2go/internal/coarsen"
	"mis2go/internal/color"
	"mis2go/internal/gen"
	"mis2go/internal/graph"
	"mis2go/internal/hash"
	"mis2go/internal/mis"
	"mis2go/internal/par"
	"mis2go/internal/partition"
	"mis2go/internal/sparse"
)

func BenchmarkSpMV(b *testing.B) {
	g := gen.Laplace3D(40, 40, 40)
	a := gen.Laplacian(g, 0.1)
	x := make([]float64, a.Rows)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i % 7)
	}
	for _, th := range []int{1, 8} {
		rt := par.New(th)
		b.Run(fmt.Sprintf("threads-%d", th), func(b *testing.B) {
			b.SetBytes(int64(12 * a.NNZ()))
			for i := 0; i < b.N; i++ {
				a.SpMV(rt, x, y)
			}
		})
	}
}

func BenchmarkSpGEMMGalerkin(b *testing.B) {
	// The RAP triple product dominating AMG setup.
	g := gen.Laplace3D(20, 20, 20)
	a := gen.Laplacian(g, 0.1)
	agg := coarsen.MIS2Aggregation(g, coarsen.Options{})
	p := coarsen.Prolongator(agg)
	r := p.Transpose()
	rt := par.New(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparse.RAP(rt, r, a, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColoring(b *testing.B) {
	g := gen.Laplace3D(24, 24, 24)
	b.Run("greedy-serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			color.Greedy(g)
		}
	})
	b.Run("jones-plassmann", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			color.Parallel(g, 0)
		}
	})
	b.Run("d2-serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			color.GreedyDistance2(g)
		}
	})
	b.Run("d2-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			color.ParallelDistance2(g, 0)
		}
	})
	b.Run("d2-via-mis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			color.Distance2ViaMIS2(g, 0)
		}
	})
}

func BenchmarkAggregationSchemes(b *testing.B) {
	g := gen.Laplace3D(24, 24, 24)
	schemes := []struct {
		name string
		run  func() coarsen.Aggregation
	}{
		{name: "serial-greedy", run: func() coarsen.Aggregation { return coarsen.SerialGreedy(g) }},
		{name: "serial-d2c", run: func() coarsen.Aggregation { return coarsen.D2C(g, 0, false) }},
		{name: "nb-d2c", run: func() coarsen.Aggregation { return coarsen.D2C(g, 0, true) }},
		{name: "mis2-basic", run: func() coarsen.Aggregation { return coarsen.Basic(g, coarsen.Options{}) }},
		{name: "mis2-agg", run: func() coarsen.Aggregation { return coarsen.MIS2Aggregation(g, coarsen.Options{}) }},
	}
	for _, s := range schemes {
		s := s
		b.Run(s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.run()
			}
		})
	}
}

func BenchmarkPartitionCoarsening(b *testing.B) {
	g := gen.Laplace3D(16, 16, 16)
	for _, pol := range []partition.Policy{partition.MIS2Policy, partition.HEMPolicy} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			var cut int64
			for i := 0; i < b.N; i++ {
				res, err := partition.Partition(g, partition.Options{Policy: pol})
				if err != nil {
					b.Fatal(err)
				}
				cut = res.EdgeCut
			}
			b.ReportMetric(float64(cut), "edge-cut")
		})
	}
}

func BenchmarkECLvsLubyMIS1(b *testing.B) {
	g := gen.RandomFEM(20, 20, 20, 18, 9)
	b.Run("ecl", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			size = len(mis.ECLMIS1(g, 0).InSet)
		}
		b.ReportMetric(float64(size), "set-size")
	})
	b.Run("luby", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			size = len(mis.LubyMIS1(g, hash.XorStar, 0).InSet)
		}
		b.ReportMetric(float64(size), "set-size")
	})
}

func BenchmarkGraphSquare(b *testing.B) {
	for _, side := range []int{10, 16} {
		g := gen.Laplace3D(side, side, side)
		b.Run(fmt.Sprintf("laplace-%d", side), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.Square()
			}
		})
	}
}

func BenchmarkInducedSubgraph(b *testing.B) {
	g := gen.Laplace3D(24, 24, 24)
	keep := make([]bool, g.N)
	for i := range keep {
		keep[i] = i%3 != 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.InducedSubgraph(keep)
	}
}

func BenchmarkCSRConstruction(b *testing.B) {
	// FromEdges on a mesh-sized edge list (graph-build cost in every
	// experiment's setup).
	side := 30
	var edges []graph.Edge
	idx := func(x, y, z int) int32 { return int32((z*side+y)*side + x) }
	for z := 0; z < side; z++ {
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				if x+1 < side {
					edges = append(edges, graph.Edge{U: idx(x, y, z), V: idx(x+1, y, z)})
				}
				if y+1 < side {
					edges = append(edges, graph.Edge{U: idx(x, y, z), V: idx(x, y+1, z)})
				}
				if z+1 < side {
					edges = append(edges, graph.Edge{U: idx(x, y, z), V: idx(x, y, z+1)})
				}
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.FromEdges(side*side*side, edges)
	}
}
