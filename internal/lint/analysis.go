// Package lint is amglint's analysis framework: a stdlib-only
// reimplementation of the golang.org/x/tools/go/analysis surface this
// repo needs, plus the analyzers that machine-check the repo's prose
// contracts (DESIGN.md "Concurrency contract per package" and the
// determinism/zero-alloc invariants behind the bitwise gates).
//
// Why not x/tools: the module has no external dependencies and the
// build environment is offline, so the Analyzer/Pass/Diagnostic shapes
// are reproduced here on go/ast + go/types directly. The API surface is
// kept intentionally close to go/analysis so analyzers could be ported
// to the real framework by changing imports.
//
// Annotation conventions recognized by the analyzers:
//
//	//amg:hotpath       on a function or method: the body must be free
//	                    of allocation constructs (hotalloc).
//	//amg:deterministic in a package comment: the package's non-test
//	                    files must be free of scheduling- or
//	                    time-dependent constructs (detorder).
//	//amg:atomic        on a struct type: all fields must be sync/atomic
//	                    values and may only be used as method-call
//	                    receivers or address-of operands (atomicfield).
//
// Directive comments (//amg:...) are written without a space after //,
// like //go:noinline, so gofmt preserves them and ast.CommentGroup.Text
// (which strips directives) does not fold them into rendered godoc.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check: a name for diagnostics and
// enable/disable flags, a doc string, and the Run function applied once
// per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's parsed and type-checked state to an
// analyzer, mirroring analysis.Pass.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report receives each diagnostic; installed by the driver.
	report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// hasDirective reports whether the comment group contains the exact
// directive line (e.g. "//amg:hotpath"). Directives are matched on the
// raw comment text because CommentGroup.Text strips //tool:name lines.
func hasDirective(g *ast.CommentGroup, directive string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// packageHasDirective reports whether any file's package comment in the
// pass carries the directive.
func packageHasDirective(pass *Pass, directive string) bool {
	for _, f := range pass.Files {
		if hasDirective(f.Doc, directive) {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file containing pos is a _test.go
// file. Analyzers whose contracts cover only shipped kernel code
// (hotalloc via annotations is self-scoping; detorder and ctxpoll are
// not) use this to skip test files.
func (p *Pass) isTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// funcName renders a diagnostic-friendly name for a FuncDecl.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	// Strip type parameters from generic receivers for display.
	switch rt := t.(type) {
	case *ast.Ident:
		return rt.Name + "." + fd.Name.Name
	case *ast.IndexExpr:
		if id, ok := rt.X.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	case *ast.IndexListExpr:
		if id, ok := rt.X.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

// calleeObj resolves the object a call expression invokes, or nil.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether the call invokes a function or method whose
// package has the given package name (not path: analyzers match on name
// so fixtures can model the package without the real import path).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgName string) bool {
	obj := calleeObj(info, call)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}
