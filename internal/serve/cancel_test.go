// Batch-window and end-to-end cancellation tests: a follower canceled
// while parked in the coalescing window detaches without corrupting the
// leader's batch, a canceled leader still hands the solve to its live
// followers, cancellation reaches the CG iteration loop and the
// hierarchy build, and every cancellation leaves the cache entry in a
// state later requests can use. All run under -race in `make check`.
package serve

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"mis2go/internal/amg"
	"mis2go/internal/gen"
	"mis2go/internal/krylov"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

// cancelRefSolve computes the sequential single-caller reference for
// the service configuration.
func cancelRefSolve(t *testing.T, cfg Config, a *sparse.Matrix, b []float64) []float64 {
	t.Helper()
	cfg = cfg.withDefaults()
	h, err := amg.Build(a.Clone(), cfg.AMG)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, a.Rows)
	rt := par.New(cfg.Threads)
	if _, err := krylov.CGBatchWith(rt, a, append([]float64(nil), b...), want, 1, cfg.Tol, cfg.MaxIter, h, nil); err != nil {
		t.Fatal(err)
	}
	return want
}

func cancelBitwise(t *testing.T, what string, got, want []float64) {
	t.Helper()
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: bit mismatch at %d: %g vs %g", what, i, got[i], want[i])
		}
	}
}

// faultPlanKey carries a per-request injection plan through the request
// context into the fault hook.
type faultPlanKey struct{}

type faultPlan struct {
	phase  FaultPhase
	kind   string // "fail" | "panic" | "cancel" | "slow"
	cancel context.CancelFunc
}

var errInjected = errors.New("injected fault")

// planHook is a FaultHook that executes the plan carried in the request
// context, if any; requests without a plan are untouched.
func planHook(p FaultPhase, ctx context.Context) error {
	plan, _ := ctx.Value(faultPlanKey{}).(*faultPlan)
	if plan == nil || plan.phase != p {
		return nil
	}
	switch plan.kind {
	case "fail":
		return errInjected
	case "panic":
		panic("injected fault: solver blew up")
	case "cancel":
		plan.cancel()
		// Wait for the cancellation to be observable on the request
		// context, then give the batch's AfterFunc a moment to
		// propagate it to the solve context: the point of this kind is
		// proving the iteration loop sees it.
		<-ctx.Done()
		time.Sleep(10 * time.Millisecond)
	case "slow":
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

func TestServeFollowerCancelDetachesFromWindow(t *testing.T) {
	cfg := Config{
		AMG:         amg.Options{MinCoarseSize: 40},
		Tol:         1e-10,
		MaxIter:     300,
		BatchWindow: 300 * time.Millisecond,
		MaxBatch:    4,
	}
	s := New(cfg)
	a := gen.Laplacian(gen.Laplace3D(7, 7, 7), 0.05)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = float64((i*7)%13) - 6
	}
	want := cancelRefSolve(t, cfg, a, b)

	// Warm the entry so the leader below goes straight into a window.
	if _, _, err := s.Solve(context.Background(), a, b); err != nil {
		t.Fatal(err)
	}

	type result struct {
		x   []float64
		st  RequestStats
		err error
	}
	leadc := make(chan result, 1)
	go func() {
		x, st, err := s.Solve(context.Background(), a, b)
		leadc <- result{x, st, err}
	}()
	time.Sleep(30 * time.Millisecond) // leader is parked in its window

	fctx, fcancel := context.WithCancel(context.Background())
	folc := make(chan result, 1)
	go func() {
		x, st, err := s.Solve(fctx, a, b)
		folc <- result{x, st, err}
	}()
	time.Sleep(30 * time.Millisecond) // follower has joined the open batch
	start := time.Now()
	fcancel()

	fol := <-folc
	detachLatency := time.Since(start)
	if fol.err == nil {
		t.Fatal("canceled follower returned a result")
	}
	if !errors.Is(fol.err, context.Canceled) {
		t.Fatalf("follower error does not wrap context.Canceled: %v", fol.err)
	}
	if detachLatency > 150*time.Millisecond {
		t.Fatalf("follower took %v to detach; the window still had ~%v to run", detachLatency, 240*time.Millisecond)
	}

	lead := <-leadc
	if lead.err != nil {
		t.Fatalf("leader failed after follower detached: %v", lead.err)
	}
	if lead.st.Batched != 2 {
		t.Fatalf("leader batched %d columns, want 2 (follower never joined?)", lead.st.Batched)
	}
	cancelBitwise(t, "leader result after follower detach", lead.x, want)

	m := s.Metrics()
	if m.Canceled != 1 {
		t.Fatalf("canceled metric = %d, want 1", m.Canceled)
	}
}

func TestServeLeaderCancelStillServesFollower(t *testing.T) {
	cfg := Config{
		AMG:         amg.Options{MinCoarseSize: 40},
		Tol:         1e-10,
		MaxIter:     300,
		BatchWindow: 250 * time.Millisecond,
		MaxBatch:    4,
	}
	s := New(cfg)
	a := gen.Laplacian(gen.Laplace2D(20, 20), 0.1)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = float64((i*5)%17) - 8
	}
	want := cancelRefSolve(t, cfg, a, b)
	if _, _, err := s.Solve(context.Background(), a, b); err != nil {
		t.Fatal(err)
	}

	type result struct {
		x   []float64
		st  RequestStats
		err error
	}
	lctx, lcancel := context.WithCancel(context.Background())
	leadc := make(chan result, 1)
	go func() {
		x, st, err := s.Solve(lctx, a, b)
		leadc <- result{x, st, err}
	}()
	time.Sleep(30 * time.Millisecond)

	folc := make(chan result, 1)
	go func() {
		x, st, err := s.Solve(context.Background(), a, b)
		folc <- result{x, st, err}
	}()
	time.Sleep(30 * time.Millisecond)
	lcancel() // leader canceled mid-window, follower still live

	fol := <-folc
	if fol.err != nil {
		t.Fatalf("follower failed after leader cancel: %v", fol.err)
	}
	if fol.st.Batched != 2 {
		t.Fatalf("follower batched %d columns, want 2", fol.st.Batched)
	}
	cancelBitwise(t, "follower result after leader cancel", fol.x, want)

	// The canceled leader either completed the solve it led anyway (its
	// own result is then the real answer) or reported the cancellation;
	// either way, never a wrong result.
	lead := <-leadc
	if lead.err == nil {
		cancelBitwise(t, "canceled leader's own result", lead.x, want)
	} else if !errors.Is(lead.err, context.Canceled) {
		t.Fatalf("leader error does not wrap context.Canceled: %v", lead.err)
	}
}

func TestServeCancelReachesIterationLoop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		AMG:         amg.Options{MinCoarseSize: 60},
		Tol:         1e-12,
		MaxIter:     500,
		BatchWindow: -1, // lead immediately; the fault hook does the canceling
		FaultHook:   planHook,
	}
	s := New(cfg)
	a := gen.Laplacian(gen.Laplace3D(12, 12, 12), 0.05)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = float64((i*3)%11) - 5
	}
	// Warm the entry cleanly first, so the canceled request below takes
	// the value-hit path straight to the solve.
	if _, _, err := s.Solve(context.Background(), a, b); err != nil {
		t.Fatal(err)
	}

	rctx := context.WithValue(ctx, faultPlanKey{}, &faultPlan{phase: FaultSolve, kind: "cancel", cancel: cancel})
	x, _, err := s.Solve(rctx, a, b)
	if err == nil {
		t.Fatal("request canceled at the solve phase returned no error")
	}
	if x != nil {
		t.Fatal("canceled solve returned a partial iterate")
	}
	if !errors.Is(err, krylov.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want krylov.ErrCanceled wrapping context.Canceled, got %v", err)
	}

	// The cache entry survived the canceled solve: same values pay
	// nothing and solve to the sequential reference bitwise.
	want := cancelRefSolve(t, cfg, a, b)
	x2, st, err := s.Solve(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Outcome != OutcomeReuse {
		t.Fatalf("outcome after canceled solve = %v, want reuse (entry was not left valid)", st.Outcome)
	}
	cancelBitwise(t, "solve after canceled solve", x2, want)

	m := s.Metrics()
	if m.Canceled != 1 {
		t.Fatalf("canceled metric = %d, want 1", m.Canceled)
	}
	if m.Panics != 0 {
		t.Fatalf("panics metric = %d, want 0", m.Panics)
	}
}

func TestServeCancelReachesHierarchyBuild(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		AMG:       amg.Options{MinCoarseSize: 40},
		FaultHook: planHook,
	}
	s := New(cfg)
	a := gen.Laplacian(gen.Laplace3D(8, 8, 8), 0.05)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}

	rctx := context.WithValue(ctx, faultPlanKey{}, &faultPlan{phase: FaultBuild, kind: "cancel", cancel: cancel})
	_, _, err := s.Solve(rctx, a, b)
	if !errors.Is(err, amg.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want amg.ErrCanceled wrapping context.Canceled, got %v", err)
	}

	// The aborted build was dropped; a fresh request rebuilds and serves.
	want := cancelRefSolve(t, cfg, a, b)
	x, st, err := s.Solve(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Outcome != OutcomeBuild {
		t.Fatalf("outcome after canceled build = %v, want build", st.Outcome)
	}
	cancelBitwise(t, "rebuild after canceled build", x, want)
}

func TestServeRefreshCancelKeepsPreviousOperator(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		AMG:       amg.Options{MinCoarseSize: 40},
		Tol:       1e-10,
		MaxIter:   300,
		FaultHook: planHook,
	}
	s := New(cfg)
	a := gen.Laplacian(gen.Laplace2D(16, 16), 0.1)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	want := cancelRefSolve(t, cfg, a, b)
	if _, _, err := s.Solve(context.Background(), a, b); err != nil {
		t.Fatal(err)
	}

	// Refresh request (new values) canceled at the refresh phase: the
	// pre-mutation check rejects it and the old numeric state survives.
	a2 := a.Clone()
	a2.Scale(3)
	rctx := context.WithValue(ctx, faultPlanKey{}, &faultPlan{phase: FaultRefresh, kind: "cancel", cancel: cancel})
	_, _, err := s.Solve(rctx, a2, b)
	if !errors.Is(err, amg.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want amg.ErrCanceled wrapping context.Canceled, got %v", err)
	}

	// Old values still pay nothing and solve bitwise identically …
	x, st, err := s.Solve(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Outcome != OutcomeReuse {
		t.Fatalf("outcome for old values after canceled refresh = %v, want reuse", st.Outcome)
	}
	cancelBitwise(t, "old values after canceled refresh", x, want)

	// … and the new values refresh cleanly on the next try.
	want2 := cancelRefSolve(t, cfg, a2, b)
	x2, st2, err := s.Solve(context.Background(), a2, b)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Outcome != OutcomeRefresh {
		t.Fatalf("outcome for retried refresh = %v, want refresh", st2.Outcome)
	}
	cancelBitwise(t, "retried refresh", x2, want2)
}

func TestServePanicInSolveCancelWakesFollowers(t *testing.T) {
	cfg := Config{
		AMG:         amg.Options{MinCoarseSize: 40},
		Tol:         1e-10,
		MaxIter:     300,
		BatchWindow: 200 * time.Millisecond,
		MaxBatch:    4,
		FaultHook:   planHook,
	}
	s := New(cfg)
	a := gen.Laplacian(gen.Laplace2D(18, 18), 0.1)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = float64(i%9) - 4
	}
	want := cancelRefSolve(t, cfg, a, b)
	if _, _, err := s.Solve(context.Background(), a, b); err != nil {
		t.Fatal(err)
	}

	// Leader carries a mid-batch panic plan; a clean follower joins its
	// window. Both must come back with an error wrapping ErrPanic —
	// never hang on the condition variable.
	rctx := context.WithValue(context.Background(), faultPlanKey{}, &faultPlan{phase: FaultSolve, kind: "panic"})
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.Solve(rctx, a, b)
		errc <- err
	}()
	time.Sleep(30 * time.Millisecond)
	_, _, folErr := s.Solve(context.Background(), a, b)
	leadErr := <-errc

	if !errors.Is(leadErr, ErrPanic) {
		t.Fatalf("panicking leader error = %v, want ErrPanic", leadErr)
	}
	if !errors.Is(folErr, ErrPanic) {
		t.Fatalf("follower error = %v, want ErrPanic", folErr)
	}
	if m := s.Metrics(); m.Panics != 1 {
		t.Fatalf("panics metric = %d, want 1", m.Panics)
	}

	// The poisoned entry was retired; the next request rebuilds and the
	// result is still bitwise the sequential reference.
	x, st, err := s.Solve(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Outcome != OutcomeBuild {
		t.Fatalf("outcome after contained panic = %v, want build", st.Outcome)
	}
	cancelBitwise(t, "rebuild after contained panic", x, want)
}
