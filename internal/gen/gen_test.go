package gen

import (
	"math"
	"testing"

	"mis2go/internal/par"
)

func TestLaplace3DStructure(t *testing.T) {
	g := Laplace3D(4, 5, 6)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 120 {
		t.Fatalf("N = %d", g.N)
	}
	// Corner vertex (0,0,0) has 3 neighbors; interior has 6.
	if g.Degree(0) != 3 {
		t.Fatalf("corner degree = %d, want 3", g.Degree(0))
	}
	interior := int32((2*5+2)*4 + 2) // (z=2, y=2, x=2)
	if g.Degree(interior) != 6 {
		t.Fatalf("interior degree = %d, want 6", g.Degree(interior))
	}
	if g.MaxDegree() != 6 {
		t.Fatalf("max degree = %d", g.MaxDegree())
	}
}

func TestLaplace2DStructure(t *testing.T) {
	g := Laplace2D(7, 9)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 63 || g.MaxDegree() != 4 || g.Degree(0) != 2 {
		t.Fatalf("unexpected structure: N=%d max=%d corner=%d", g.N, g.MaxDegree(), g.Degree(0))
	}
}

func TestGrid3D27Structure(t *testing.T) {
	g := Grid3D27(5, 5, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Interior vertex: full 3x3x3 cube minus self = 26.
	interior := int32((2*5+2)*5 + 2)
	if g.Degree(interior) != 26 {
		t.Fatalf("interior degree = %d, want 26", g.Degree(interior))
	}
	if g.Degree(0) != 7 { // corner: 2x2x2 cube minus self
		t.Fatalf("corner degree = %d, want 7", g.Degree(0))
	}
}

func TestElasticity3DStructure(t *testing.T) {
	g := Elasticity3D(4, 4, 4, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 192 {
		t.Fatalf("N = %d, want 192", g.N)
	}
	// Interior grid point has 26 neighbors; each of its 3 dofs couples to
	// all dofs of self and neighbors minus itself: 27*3 - 1 = 80.
	interior := ((1*4+1)*4 + 1) * 3
	if g.Degree(int32(interior)) != 80 {
		t.Fatalf("interior dof degree = %d, want 80", g.Degree(int32(interior)))
	}
	// Paper Table II: Elasticity3D_60 has avg degree ~78 at 648k vertices.
	if g.AvgDegree() < 40 {
		t.Fatalf("avg degree %.1f too low", g.AvgDegree())
	}
}

func TestExpandDOFIdentity(t *testing.T) {
	g := Laplace2D(3, 3)
	if ExpandDOF(g, 1) != g {
		t.Fatal("dof=1 must return the same graph")
	}
	e := ExpandDOF(g, 2)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.N != 18 {
		t.Fatalf("N = %d", e.N)
	}
	// Each dof couples to its sibling dof: edge (2v, 2v+1) must exist.
	for v := int32(0); v < 9; v++ {
		if !e.HasEdge(2*v, 2*v+1) {
			t.Fatalf("sibling dof edge missing at block %d", v)
		}
	}
}

func TestRandomFEMTargetsDegree(t *testing.T) {
	g := RandomFEM(20, 20, 20, 22.0, 12345)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 8000 {
		t.Fatalf("N = %d", g.N)
	}
	avg := g.AvgDegree()
	if avg < 14 || avg > 26 {
		t.Fatalf("avg degree %.1f not near target 22", avg)
	}
	// Deterministic.
	h := RandomFEM(20, 20, 20, 22.0, 12345)
	if h.NumEdges() != g.NumEdges() {
		t.Fatal("RandomFEM not deterministic")
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(1000, 5000, 99)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 8000 { // ~2*5000 minus collisions
		t.Fatalf("edges = %d, too few", g.NumEdges())
	}
}

func TestLaplacianProperties(t *testing.T) {
	g := Laplace2D(10, 10)
	a := Laplacian(g, 0.5)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Row sums equal the shift; diagonal = degree + shift.
	rt := par.New(1)
	ones := make([]float64, a.Rows)
	for i := range ones {
		ones[i] = 1
	}
	y := make([]float64, a.Rows)
	a.SpMV(rt, ones, y)
	for i, v := range y {
		if math.Abs(v-0.5) > 1e-12 {
			t.Fatalf("row %d sum = %g, want 0.5", i, v)
		}
	}
	d := a.Diagonal()
	for i := range d {
		if d[i] != float64(g.Degree(int32(i)))+0.5 {
			t.Fatalf("diagonal %d = %g", i, d[i])
		}
	}
}

func TestWeightedLaplacianSymmetric(t *testing.T) {
	g := Laplace2D(8, 8)
	a := WeightedLaplacian(g, 0.1, 7)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	at := a.Transpose()
	for i := range a.Val {
		if a.Col[i] != at.Col[i] || math.Abs(a.Val[i]-at.Val[i]) > 1e-15 {
			t.Fatal("weighted Laplacian not symmetric")
		}
	}
	// Weak diagonal dominance with positive shift.
	d := a.Diagonal()
	for i := 0; i < a.Rows; i++ {
		off := 0.0
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if int(a.Col[p]) != i {
				off += math.Abs(a.Val[p])
			}
		}
		if d[i] <= off {
			t.Fatalf("row %d not strictly dominant: diag %g off %g", i, d[i], off)
		}
	}
}

func TestLaplacianMatchesGraphPattern(t *testing.T) {
	g := Laplace3D(3, 3, 3)
	a := Laplacian(g, 1.0)
	back := a.Graph()
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("pattern round-trip changed edges: %d vs %d", back.NumEdges(), g.NumEdges())
	}
}
