// Package krylov provides the iterative solvers used by the paper's
// solver experiments: preconditioned conjugate gradient (Table V) and
// preconditioned restarted GMRES (Table VI).
//
// Precision: every solver in this package runs its recurrence entirely
// in float64 — iterates, search directions, dot products, and residual
// norms — regardless of the operator's stored value precision. A
// float32-valued operator (sparse.PrecisionF32) changes only the bytes
// the matvec streams; its kernels accept and produce float64 vectors
// with float64 accumulation, so the float64 recurrence guards the
// convergence of mixed-precision solves. Nothing in this package
// branches on precision.
//
// Concurrency: the solver functions are stateless between the operator,
// the vectors, and the workspace they are handed — concurrent solves
// are safe exactly when those are not shared: operators are read-only
// (safe to share), but each concurrent solve needs its own b/x vectors,
// its own Workspace, and a preconditioner that is either concurrency-
// safe itself (Identity, Jacobi) or externally serialized (an AMG
// hierarchy). internal/serve packages this contract behind a service.
//
//amg:deterministic
package krylov

import (
	"context"
	"errors"
	"fmt"
	"math"

	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

// Preconditioner applies z = M^{-1} r. Implementations must not modify r.
type Preconditioner interface {
	Precondition(r, z []float64)
}

// BatchPreconditioner is implemented by preconditioners that can apply
// M^{-1} to k residual columns stored in the interleaved multi-RHS
// layout (the k values of row i contiguous at [i*k : (i+1)*k]) in one
// pass. CGBatch uses it when available; other preconditioners are
// applied column by column through de-interleaving scratch.
type BatchPreconditioner interface {
	PreconditionBatch(r, z []float64, k int)
}

// identityPrec is the unpreconditioned fallback.
type identityPrec struct{}

func (identityPrec) Precondition(r, z []float64) { copy(z, r) }

func (identityPrec) PreconditionBatch(r, z []float64, k int) { copy(z, r) }

// Identity returns the no-op preconditioner.
func Identity() Preconditioner { return identityPrec{} }

// Jacobi returns the diagonal (Jacobi) preconditioner for a, the simplest
// baseline between no preconditioning and the structured methods.
// It returns an error if any diagonal entry is zero.
func Jacobi(a sparse.Operator) (Preconditioner, error) {
	rows, _ := a.Dims()
	dinv := make([]float64, rows)
	a.DiagonalInto(par.Default(), dinv)
	for i, v := range dinv {
		if v == 0 {
			return nil, fmt.Errorf("krylov: zero diagonal at row %d", i)
		}
		dinv[i] = 1 / v
	}
	return jacobiPrecond{dinv: dinv}, nil
}

type jacobiPrecond struct{ dinv []float64 }

func (j jacobiPrecond) Precondition(r, z []float64) {
	for i := range z {
		z[i] = j.dinv[i] * r[i]
	}
}

func (j jacobiPrecond) PreconditionBatch(r, z []float64, k int) {
	for i, d := range j.dinv {
		rb := r[i*k : i*k+k]
		zb := z[i*k : i*k+k]
		for q, v := range rb {
			zb[q] = d * v
		}
	}
}

// Stats reports the outcome of a solve.
type Stats struct {
	// Iterations performed (matrix-vector products for CG; inner
	// iterations for GMRES).
	Iterations int
	// RelResidual is the final relative residual ||b - Ax|| / ||b||.
	RelResidual float64
	// Converged reports whether the tolerance was met: the recomputed
	// true residual is below tol, or the iteration's residual estimate
	// stopped below tol and the true residual stays under the
	// false-convergence limit (a larger disagreement is a classified
	// ErrDiverged failure, not a converged solve; see
	// falseConvergenceLimit).
	Converged bool
}

// ErrNotConverged is wrapped by solvers that hit the iteration limit.
var ErrNotConverged = errors.New("krylov: did not converge")

// ErrCanceled is wrapped by the *Ctx solvers when their context is
// canceled mid-solve. The returned error also wraps the context's cause
// (context.Canceled or context.DeadlineExceeded), so callers can use
// errors.Is against either sentinel. On cancellation x holds the current
// iterate — a partial, unconverged solution — and Stats reports the
// iteration count and the cheapest available residual estimate (the
// recurrence residual; no extra matrix-vector product is spent on a
// result nobody wants).
var ErrCanceled = errors.New("krylov: solve canceled")

// ctxDone reports the context's cancellation error, treating nil as
// context.Background(). The check is one mutex-free load for the
// background context and one short mutex hold for a real cancel context —
// invisible next to the matrix traversal every iteration performs.
func ctxDone(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// cancelErr builds the canceled-solve error for a solver that stopped
// after iters iterations with relative recurrence residual rel.
func cancelErr(ctx context.Context, name string, iters int, rel float64) error {
	return fmt.Errorf("%w: %s stopped after %d iterations (recurrence relres %.3e): %w",
		ErrCanceled, name, iters, rel, context.Cause(ctx))
}

// dot computes the inner product with a 4-way unrolled dual-accumulator
// loop. The summation order is a fixed function of the vector length, so
// results are identical for every worker count.
//
//amg:hotpath
func dot(a, b []float64) float64 {
	var s0, s1 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i]*b[i] + a[i+1]*b[i+1]
		s1 += a[i+2]*b[i+2] + a[i+3]*b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1
}

//amg:hotpath
func norm2(a []float64) float64 { return math.Sqrt(dot(a, a)) }

// axpy computes y += alpha*x.
//
//amg:hotpath
func axpy(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// Workspace holds the scratch vectors of CG, CGBatch and GMRES so that
// repeated solves allocate nothing. A zero Workspace is ready for use;
// buffers grow on demand and are retained between solves. Every solve
// re-slices all scratch to exactly the system size, so a workspace may
// be reused freely across systems of different sizes: results are
// bitwise identical to a fresh workspace. Not safe for concurrent use.
type Workspace struct {
	r, z, p, ap []float64
	// GMRES state (allocated only when GMRES is used).
	v       [][]float64
	h       [][]float64
	cs, sn  []float64
	s, y    []float64
	zb      []float64
	restart int
	// CGBatch state: per-column scalar recurrences, active flags and
	// stats, and two column-length buffers for de-interleaving through
	// generic preconditioners.
	scal   []float64
	act    []bool
	stats  []Stats
	rc, zc []float64
	// Per-column health-guard state (allocated only when CGBatchCtx
	// runs with a non-nil *Health).
	guard []guardState
}

// NewWorkspace returns a Workspace pre-sized for systems of n unknowns.
func NewWorkspace(n int) *Workspace {
	w := &Workspace{}
	w.ensureCG(n)
	return w
}

// grow returns s resized to length n, reusing capacity when possible.
func grow(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func (w *Workspace) ensureCG(n int) {
	w.r = grow(w.r, n)
	w.z = grow(w.z, n)
	w.p = grow(w.p, n)
	w.ap = grow(w.ap, n)
}

func (w *Workspace) ensureGMRES(n, restart int) {
	w.ensureCG(n) // r, z, ap (as the w vector) are shared
	if w.restart < restart || len(w.v) == 0 {
		w.v = make([][]float64, restart+1)
		w.h = make([][]float64, restart+1)
		for i := range w.h {
			w.h[i] = make([]float64, restart)
		}
		w.cs = make([]float64, restart)
		w.sn = make([]float64, restart)
		w.s = make([]float64, restart+1)
		w.y = make([]float64, restart)
		w.restart = restart
	}
	// Slice every basis vector to exactly n: a workspace retained from a
	// larger system must never hand over-length scratch (with stale tail
	// values) to the Arnoldi kernels.
	for i := range w.v {
		w.v[i] = grow(w.v[i], n)
	}
	w.zb = grow(w.zb, n)
}

// ensureBatch sizes the workspace for a k-wide interleaved batch solve
// of n unknowns: the CG vectors hold n*k values, scal carries the six
// per-column scalar recurrences, and rc/zc are the de-interleaving
// buffers for non-batch preconditioners.
func (w *Workspace) ensureBatch(n, k int) {
	w.r = grow(w.r, n*k)
	w.z = grow(w.z, n*k)
	w.p = grow(w.p, n*k)
	w.ap = grow(w.ap, n*k)
	w.scal = grow(w.scal, 6*k)
	w.rc = grow(w.rc, n)
	w.zc = grow(w.zc, n)
	if cap(w.act) >= k {
		w.act = w.act[:k]
	} else {
		w.act = make([]bool, k)
	}
	if cap(w.stats) >= k {
		w.stats = w.stats[:k]
	} else {
		w.stats = make([]Stats, k)
	}
}

// ensureGuard sizes and resets the per-column guard state for a k-wide
// guarded batch solve.
func (w *Workspace) ensureGuard(k int) {
	if cap(w.guard) >= k {
		w.guard = w.guard[:k]
	} else {
		w.guard = make([]guardState, k)
	}
	for j := range w.guard {
		w.guard[j] = guardInit()
	}
}

// CG solves A x = b for SPD A with the preconditioned conjugate gradient
// method. x holds the initial guess on entry and the solution on exit.
// Iterations stop when the recurrence residual drops below tol*||b|| or
// maxIter is reached; Stats reports the true final residual. a is any
// operator format (CSR or SELL, in either value precision); formats
// produce bit-identical kernels, so the solve trajectory is independent
// of the format choice. The recurrence is always float64: an f32-valued
// operator perturbs the matvec results (values were rounded once at
// store time) but never the arithmetic of the iteration itself.
func CG(rt *par.Runtime, a sparse.Operator, b, x []float64, tol float64, maxIter int, m Preconditioner) (Stats, error) {
	return CGWith(rt, a, b, x, tol, maxIter, m, nil)
}

// CGWith is CG with a caller-provided Workspace; repeated solves through
// the same Workspace perform no allocations. ws may be nil, in which
// case a temporary workspace is allocated.
func CGWith(rt *par.Runtime, a sparse.Operator, b, x []float64, tol float64, maxIter int, m Preconditioner, ws *Workspace) (Stats, error) {
	return CGCtx(context.Background(), rt, a, b, x, tol, maxIter, m, ws, nil)
}

// CGCtx is CGWith with cooperative cancellation and an optional health
// guard: the context is checked once before the setup products and at
// the top of every iteration, so a canceled caller stops paying for
// matrix traversals within one iteration. Cancellation returns an error
// wrapping ErrCanceled (and the context's cause); x then holds the
// partial iterate. A non-nil hg watches the per-iteration relative
// recurrence residual (the value the convergence test already computed)
// and aborts a non-finite, diverging, or stagnating solve with a
// classified error (ErrNonFinite, ErrDiverged, ErrStagnated); x then
// holds the iterate at abort. Neither check changes the arithmetic:
// with an uncanceled context and a healthy solve the result is bitwise
// identical to CGWith. ctx may be nil (treated as context.Background());
// hg may be nil (no guard).
func CGCtx(ctx context.Context, rt *par.Runtime, a sparse.Operator, b, x []float64, tol float64, maxIter int, m Preconditioner, ws *Workspace, hg *Health) (Stats, error) {
	n, _ := a.Dims()
	if len(b) != n || len(x) != n {
		return Stats{}, fmt.Errorf("krylov: CG size mismatch (n=%d, len(b)=%d, len(x)=%d)", n, len(b), len(x))
	}
	if m == nil {
		m = Identity()
	}
	if ws == nil {
		ws = &Workspace{}
	}
	ws.ensureCG(n)
	r, z, p, ap := ws.r, ws.z, ws.p, ws.ap

	bnorm := norm2(b)
	if maxIter <= 0 {
		// Report the initial residual without touching x.
		nb := bnorm
		if nb == 0 {
			nb = 1
		}
		rel := finalResidualWith(rt, a, b, x, nb, r)
		st := Stats{Iterations: 0, RelResidual: rel, Converged: rel < tol}
		if !st.Converged {
			return st, fmt.Errorf("%w: CG after 0 iterations, relres %.3e", ErrNotConverged, rel)
		}
		return st, nil
	}
	if bnorm == 0 {
		// A zero right-hand side has the exact solution x = 0 (A is SPD,
		// hence nonsingular); iterating would divide by a zero residual
		// norm. Return it in 0 iterations.
		for i := range x {
			x[i] = 0
		}
		return Stats{Iterations: 0, RelResidual: 0, Converged: true}, nil
	}
	if err := ctxDone(ctx); err != nil {
		return Stats{}, cancelErr(ctx, "CG", 0, math.Inf(1))
	}

	a.SpMV(rt, x, r)
	// rr accumulates ||r||^2 with a single accumulator in index order —
	// a fixed summation order, so convergence behavior is identical for
	// every worker count — fused into the vector updates to save a pass.
	rr := 0.0
	for i := range r {
		ri := b[i] - r[i]
		r[i] = ri
		rr += ri * ri
	}
	m.Precondition(r, z)
	copy(p, z)
	rz := dot(r, z)

	iters := 0
	met := false
	gst := guardInit()
	for ; iters < maxIter; iters++ {
		rel := math.Sqrt(rr) / bnorm
		if rel < tol {
			met = true
			break
		}
		if err := ctxDone(ctx); err != nil {
			return Stats{Iterations: iters, RelResidual: rel}, cancelErr(ctx, "CG", iters, rel)
		}
		if hg != nil {
			if herr := hg.check(&gst, "CG", -1, iters, rel); herr != nil {
				return Stats{Iterations: iters, RelResidual: rel}, herr
			}
		}
		a.SpMV(rt, p, ap)
		pap := dot(p, ap)
		if pap <= 0 {
			return Stats{Iterations: iters, RelResidual: rel},
				fmt.Errorf("%w: p^T A p = %g at iteration %d", ErrBreakdown, pap, iters)
		}
		alpha := rz / pap
		// Fused update of x and r with the residual norm of the new r
		// accumulated in the same pass (single accumulator, index order:
		// a fixed, scheduling-independent summation order).
		rr = 0
		for i := range r {
			x[i] += alpha * p[i]
			ri := r[i] - alpha*ap[i]
			r[i] = ri
			rr += ri * ri
		}
		m.Precondition(r, z)
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	rel := finalResidualWith(rt, a, b, x, bnorm, ap)
	if iters < maxIter {
		met = true // loop exited on the residual test
	}
	if met && tol > 0 && rel >= falseConvergenceLimit(tol) {
		return Stats{Iterations: iters, RelResidual: rel},
			fmt.Errorf("%w: CG false convergence at iteration %d: recurrence residual met tol %.1e but true relres is %.3e", ErrDiverged, iters, tol, rel)
	}
	st := Stats{Iterations: iters, RelResidual: rel, Converged: met || rel < tol}
	if !st.Converged {
		return st, fmt.Errorf("%w: CG after %d iterations, relres %.3e", ErrNotConverged, iters, rel)
	}
	return st, nil
}

// GMRES solves A x = b with left-preconditioned restarted GMRES(restart).
// x holds the initial guess on entry and the solution on exit.
func GMRES(rt *par.Runtime, a sparse.Operator, b, x []float64, tol float64, maxIter, restart int, m Preconditioner) (Stats, error) {
	return GMRESWith(rt, a, b, x, tol, maxIter, restart, m, nil)
}

// GMRESWith is GMRES with a caller-provided Workspace; repeated solves
// through the same Workspace perform no allocations. ws may be nil.
func GMRESWith(rt *par.Runtime, a sparse.Operator, b, x []float64, tol float64, maxIter, restart int, m Preconditioner, ws *Workspace) (Stats, error) {
	return GMRESCtx(context.Background(), rt, a, b, x, tol, maxIter, restart, m, ws, nil)
}

// GMRESCtx is GMRESWith with cooperative cancellation, checked at the
// top of every inner (Arnoldi) iteration, and an optional health guard
// watching the per-iteration recurrence residual estimate |s[k+1]|/
// ||M^{-1}b||. On cancellation x holds the iterate of the last
// *completed* restart cycle — the in-progress cycle's correction is
// discarded, not applied half-built — and the reported residual is the
// recurrence estimate of that unfinished cycle; a guard abort behaves
// the same way (the unfinished cycle is discarded). With an uncanceled
// context and a healthy solve the result is bitwise identical to
// GMRESWith. ctx may be nil (treated as context.Background()); hg may
// be nil (no guard).
func GMRESCtx(ctx context.Context, rt *par.Runtime, a sparse.Operator, b, x []float64, tol float64, maxIter, restart int, m Preconditioner, ws *Workspace, hg *Health) (Stats, error) {
	n, _ := a.Dims()
	if len(b) != n || len(x) != n {
		return Stats{}, fmt.Errorf("krylov: GMRES size mismatch")
	}
	if m == nil {
		m = Identity()
	}
	if ws == nil {
		ws = &Workspace{}
	}
	bnorm := norm2(b)
	if maxIter <= 0 {
		// Report the initial residual without touching x. This runs
		// before the restart clamp and workspace sizing: clamping restart
		// to a non-positive maxIter would size the Arnoldi state with a
		// negative dimension.
		ws.ensureCG(n)
		nb := bnorm
		if nb == 0 {
			nb = 1
		}
		rel := finalResidualWith(rt, a, b, x, nb, ws.r)
		st := Stats{Iterations: 0, RelResidual: rel, Converged: rel < tol}
		if !st.Converged {
			return st, fmt.Errorf("%w: GMRES after 0 iterations, relres %.3e", ErrNotConverged, rel)
		}
		return st, nil
	}
	if restart <= 0 {
		restart = 50
	}
	if restart > maxIter {
		restart = maxIter
	}
	ws.ensureGMRES(n, restart)

	if bnorm == 0 {
		// Zero right-hand side: the solution is x = 0; iterating would
		// normalize a zero residual (beta = 0) into NaN basis vectors.
		for i := range x {
			x[i] = 0
		}
		return Stats{Iterations: 0, RelResidual: 0, Converged: true}, nil
	}

	// Preconditioned right-hand side norm for the stopping test.
	zb := ws.zb
	m.Precondition(b, zb)
	zbnorm := norm2(zb)
	if zbnorm == 0 {
		zbnorm = 1
	}

	r, z, w := ws.r, ws.z, ws.ap
	v := ws.v // Krylov basis
	h := ws.h // Hessenberg, h[i][j]
	cs, sn := ws.cs, ws.sn
	s, y := ws.s, ws.y

	totalIters := 0
	met := false
	gst := guardInit()
	for totalIters < maxIter {
		// r = M^{-1}(b - A x)
		a.SpMV(rt, x, r)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		m.Precondition(r, z)
		beta := norm2(z)
		if beta == 0 || beta/zbnorm < tol {
			// beta == 0 means the residual is exactly zero: converged even
			// when tol == 0 (continuing would divide by beta).
			met = true
			break
		}
		inv := 1 / beta
		for i := range z {
			v[0][i] = z[i] * inv
		}
		for i := range s {
			s[i] = 0
		}
		s[0] = beta

		k := 0
		for ; k < restart && totalIters < maxIter; k++ {
			if err := ctxDone(ctx); err != nil {
				// Abandon the unfinished cycle: x still holds the iterate
				// from the last completed one (the correction is only
				// applied after the inner loop).
				rel := math.Abs(s[k]) / zbnorm
				return Stats{Iterations: totalIters, RelResidual: rel}, cancelErr(ctx, "GMRES", totalIters, rel)
			}
			totalIters++
			// w = M^{-1} A v_k
			a.SpMV(rt, v[k], w)
			m.Precondition(w, z)
			copy(w, z)
			// Modified Gram-Schmidt.
			for i := 0; i <= k; i++ {
				h[i][k] = dot(w, v[i])
				axpy(-h[i][k], v[i], w)
			}
			h[k+1][k] = norm2(w)
			lucky := h[k+1][k] <= 1e-300
			if !lucky {
				inv := 1 / h[k+1][k]
				for i := range w {
					v[k+1][i] = w[i] * inv
				}
			}
			// Apply accumulated Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
				h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
				h[i][k] = t
			}
			// New rotation to annihilate h[k+1][k].
			denom := math.Hypot(h[k][k], h[k+1][k])
			if denom == 0 {
				cs[k], sn[k] = 1, 0
			} else {
				cs[k], sn[k] = h[k][k]/denom, h[k+1][k]/denom
			}
			h[k][k] = cs[k]*h[k][k] + sn[k]*h[k+1][k]
			h[k+1][k] = 0
			s[k+1] = -sn[k] * s[k]
			s[k] = cs[k] * s[k]
			if lucky {
				// Lucky breakdown: the Krylov subspace is exhausted and the
				// solution is exact in it. Continuing would read v[k+1],
				// which was never written this cycle — with a reused
				// workspace that is a stale basis vector from a previous
				// (possibly larger) solve.
				k++
				break
			}
			if math.Abs(s[k+1])/zbnorm < tol {
				k++
				break
			}
			if hg != nil {
				// The guard reads the recurrence estimate the stopping test
				// above already computed. On abort the unfinished cycle is
				// discarded, like cancellation: x keeps the iterate of the
				// last completed restart.
				rel := math.Abs(s[k+1]) / zbnorm
				if herr := hg.check(&gst, "GMRES", -1, totalIters, rel); herr != nil {
					return Stats{Iterations: totalIters, RelResidual: rel}, herr
				}
			}
		}
		// Solve the upper triangular system h y = s.
		for i := k - 1; i >= 0; i-- {
			y[i] = s[i]
			for j := i + 1; j < k; j++ {
				y[i] -= h[i][j] * y[j]
			}
			y[i] /= h[i][i]
		}
		for i := 0; i < k; i++ {
			axpy(y[i], v[i], x)
		}
		if k == 0 {
			break // stagnation
		}
	}
	rel := finalResidualWith(rt, a, b, x, bnorm, r)
	if met && tol > 0 && rel >= falseConvergenceLimit(tol) {
		return Stats{Iterations: totalIters, RelResidual: rel},
			fmt.Errorf("%w: GMRES false convergence at iteration %d: residual estimate met tol %.1e but true relres is %.3e", ErrDiverged, totalIters, tol, rel)
	}
	st := Stats{Iterations: totalIters, RelResidual: rel, Converged: met || rel < tol}
	if !st.Converged {
		return st, fmt.Errorf("%w: GMRES after %d iterations, relres %.3e", ErrNotConverged, totalIters, rel)
	}
	return st, nil
}

// CGBatch solves the k systems A x_j = b_j simultaneously with the
// preconditioned conjugate gradient method, sharing one SpMM traversal
// of A per iteration across all right-hand sides. b and x use the
// interleaved multi-RHS layout of sparse.SpMM (the k values of row i
// contiguous at [i*k : (i+1)*k]); x holds the initial guesses on entry
// and the solutions on exit. Each column runs its own scalar recurrence;
// a column that converges (or has a zero right-hand side, solved as
// x_j = 0 in 0 iterations) is frozen — its alpha and beta are pinned to
// zero so the shared vector updates become exact no-ops — while the
// remaining columns iterate. Deterministic for every worker count.
func CGBatch(rt *par.Runtime, a sparse.Operator, b, x []float64, k int, tol float64, maxIter int, m Preconditioner) ([]Stats, error) {
	return CGBatchWith(rt, a, b, x, k, tol, maxIter, m, nil)
}

// preconditionBatch applies m to k interleaved columns, using the batch
// fast path when m implements BatchPreconditioner and column-by-column
// de-interleaving through rc/zc otherwise. In the de-interleave path a
// non-nil act skips frozen columns — their stale z only feeds a search
// direction whose alpha/beta are pinned to zero, so results are
// unchanged while an expensive preconditioner (an AMG V-cycle, say)
// runs once per live column instead of once per column. act must be nil
// on the first application, before frozen columns hold a finite z.
func preconditionBatch(m Preconditioner, r, z []float64, n, k int, rc, zc []float64, act []bool) {
	if bp, ok := m.(BatchPreconditioner); ok {
		bp.PreconditionBatch(r, z, k)
		return
	}
	for j := 0; j < k; j++ {
		if act != nil && !act[j] {
			continue
		}
		for i := 0; i < n; i++ {
			rc[i] = r[i*k+j]
		}
		m.Precondition(rc, zc)
		for i := 0; i < n; i++ {
			z[i*k+j] = zc[i]
		}
	}
}

// CGBatchWith is CGBatch with a caller-provided Workspace; repeated
// batch solves through the same Workspace perform no allocations. The
// returned Stats slice (one entry per column) is owned by the workspace
// and overwritten by the next batch solve through it. ws may be nil.
func CGBatchWith(rt *par.Runtime, a sparse.Operator, b, x []float64, k int, tol float64, maxIter int, m Preconditioner, ws *Workspace) ([]Stats, error) {
	return CGBatchCtx(context.Background(), rt, a, b, x, k, tol, maxIter, m, ws, nil)
}

// CGBatchCtx is CGBatchWith with cooperative cancellation, checked once
// before the setup products and at the top of every iteration, and an
// optional per-column health guard. On cancellation every still-active
// column reports its iteration count and recurrence residual (Converged
// false), columns frozen earlier keep their recurrence result (like the
// breakdown path), and the error wraps ErrCanceled plus the context's
// cause. A non-nil hg watches each active column's relative recurrence
// residual; a column turning non-finite, divergent, or stagnant aborts
// the whole batch the way a breakdown does — all columns share the one
// operator, so the failure is a property of the system, not the column —
// with a classified error naming the first offending column. With an
// uncanceled context and a healthy solve the result is bitwise identical
// to CGBatchWith. ctx may be nil (treated as context.Background()); hg
// may be nil (no guard).
func CGBatchCtx(ctx context.Context, rt *par.Runtime, a sparse.Operator, b, x []float64, k int, tol float64, maxIter int, m Preconditioner, ws *Workspace, hg *Health) ([]Stats, error) {
	n, _ := a.Dims()
	if k <= 0 {
		return nil, fmt.Errorf("krylov: CGBatch needs k >= 1, got %d", k)
	}
	if len(b) != n*k || len(x) != n*k {
		return nil, fmt.Errorf("krylov: CGBatch size mismatch (n=%d, k=%d, len(b)=%d, len(x)=%d)", n, k, len(b), len(x))
	}
	if m == nil {
		m = Identity()
	}
	if ws == nil {
		ws = &Workspace{}
	}
	ws.ensureBatch(n, k)
	if hg != nil {
		ws.ensureGuard(k)
	}
	r, z, p, ap := ws.r, ws.z, ws.p, ws.ap
	scal := ws.scal
	rr, rz := scal[0:k], scal[k:2*k]
	rzNew, alpha := scal[2*k:3*k], scal[3*k:4*k]
	bnorm, pap := scal[4*k:5*k], scal[5*k:6*k]
	act, stats := ws.act, ws.stats
	for j := 0; j < k; j++ {
		stats[j] = Stats{}
	}

	// Per-column ||b_j|| in one pass over the interleaved block (single
	// accumulator per column in index order: deterministic).
	for j := 0; j < k; j++ {
		bnorm[j] = 0
	}
	for i := 0; i < n; i++ {
		bb := b[i*k : i*k+k]
		for j, v := range bb {
			bnorm[j] += v * v
		}
	}
	for j := 0; j < k; j++ {
		bnorm[j] = math.Sqrt(bnorm[j])
	}

	if maxIter <= 0 {
		// Report the initial residuals without touching x.
		a.SpMM(rt, k, x, ap)
		failed, _ := batchFinalize(b, x, ap, bnorm, rr, stats, n, k, tol, act, false)
		if failed > 0 {
			return stats, fmt.Errorf("%w: CGBatch after 0 iterations, %d of %d columns above tol", ErrNotConverged, failed, k)
		}
		return stats, nil
	}

	nActive := k
	for j := 0; j < k; j++ {
		act[j] = true
		if bnorm[j] == 0 {
			// Zero right-hand side: exact solution x_j = 0 in 0 iterations
			// (zeroed before the residual pass so r_j and rr[j] come out
			// exactly zero and the column's recurrence is a no-op).
			for i := 0; i < n; i++ {
				x[i*k+j] = 0
			}
			act[j] = false
			stats[j] = Stats{Iterations: 0, RelResidual: 0, Converged: true}
			nActive--
		}
	}

	if err := ctxDone(ctx); err != nil {
		for j := 0; j < k; j++ {
			if act[j] {
				stats[j] = Stats{Iterations: 0, RelResidual: math.Inf(1)}
			}
		}
		return stats, cancelErr(ctx, "CGBatch", 0, math.Inf(1))
	}

	// r = b - A x with per-column rr in the same pass.
	a.SpMM(rt, k, x, r)
	for j := 0; j < k; j++ {
		rr[j] = 0
	}
	for i := 0; i < n; i++ {
		base := i * k
		rb := r[base : base+k]
		bb := b[base : base+k]
		for j := range rb {
			ri := bb[j] - rb[j]
			rb[j] = ri
			rr[j] += ri * ri
		}
	}
	preconditionBatch(m, r, z, n, k, ws.rc, ws.zc, nil)
	copy(p, z)
	for j := 0; j < k; j++ {
		rz[j] = 0
	}
	for i := 0; i < n; i++ {
		base := i * k
		rb := r[base : base+k]
		zb := z[base : base+k]
		for j := range rb {
			rz[j] += rb[j] * zb[j]
		}
	}

	iters := 0
	for ; iters < maxIter && nActive > 0; iters++ {
		for j := 0; j < k; j++ {
			if !act[j] {
				continue
			}
			rel := math.Sqrt(rr[j]) / bnorm[j]
			if rel < tol {
				act[j] = false
				stats[j].Iterations = iters
				nActive--
				continue
			}
			if hg != nil {
				if herr := hg.check(&ws.guard[j], "CGBatch", j, iters, rel); herr != nil {
					batchAbortStats(stats, act, rr, bnorm, iters, k)
					return stats, herr
				}
			}
		}
		if nActive == 0 {
			break
		}
		if err := ctxDone(ctx); err != nil {
			// Mirror the breakdown path: active columns report their
			// recurrence residual unconverged; columns frozen by the
			// convergence test keep their recurrence result.
			worst := 0.0
			for q := 0; q < k; q++ {
				if act[q] {
					stats[q].Iterations = iters
					stats[q].RelResidual = math.Sqrt(rr[q]) / bnorm[q]
					if stats[q].RelResidual > worst {
						worst = stats[q].RelResidual
					}
				} else if !stats[q].Converged {
					stats[q].RelResidual = math.Sqrt(rr[q]) / bnorm[q]
					stats[q].Converged = true
				}
			}
			return stats, cancelErr(ctx, "CGBatch", iters, worst)
		}
		a.SpMM(rt, k, p, ap)
		for j := 0; j < k; j++ {
			pap[j] = 0
		}
		for i := 0; i < n; i++ {
			base := i * k
			pb := p[base : base+k]
			apb := ap[base : base+k]
			for j := range pb {
				pap[j] += pb[j] * apb[j]
			}
		}
		for j := 0; j < k; j++ {
			if !act[j] {
				alpha[j] = 0
				continue
			}
			if pap[j] <= 0 {
				batchAbortStats(stats, act, rr, bnorm, iters, k)
				return stats, fmt.Errorf("%w: CGBatch column %d, p^T A p = %g at iteration %d", ErrBreakdown, j, pap[j], iters)
			}
			alpha[j] = rz[j] / pap[j]
		}
		// Fused x/r update with the new per-column residual norms; frozen
		// columns have alpha = 0, so their x and r are bit-identical
		// no-ops and rr stays below tolerance.
		for j := 0; j < k; j++ {
			rr[j] = 0
		}
		for i := 0; i < n; i++ {
			base := i * k
			xb := x[base : base+k]
			rb := r[base : base+k]
			pb := p[base : base+k]
			apb := ap[base : base+k]
			for j := range xb {
				xb[j] += alpha[j] * pb[j]
				ri := rb[j] - alpha[j]*apb[j]
				rb[j] = ri
				rr[j] += ri * ri
			}
		}
		preconditionBatch(m, r, z, n, k, ws.rc, ws.zc, act)
		for j := 0; j < k; j++ {
			rzNew[j] = 0
		}
		for i := 0; i < n; i++ {
			base := i * k
			rb := r[base : base+k]
			zb := z[base : base+k]
			for j := range rb {
				rzNew[j] += rb[j] * zb[j]
			}
		}
		// alpha doubles as beta for the direction update.
		for j := 0; j < k; j++ {
			if act[j] {
				alpha[j] = rzNew[j] / rz[j]
			} else {
				alpha[j] = 0
			}
			rz[j] = rzNew[j]
		}
		for i := 0; i < n; i++ {
			base := i * k
			pb := p[base : base+k]
			zb := z[base : base+k]
			for j := range pb {
				pb[j] = zb[j] + alpha[j]*pb[j]
			}
		}
	}
	for j := 0; j < k; j++ {
		if act[j] {
			stats[j].Iterations = iters
		}
	}

	// True final residuals per column.
	a.SpMM(rt, k, x, ap)
	failed, falseConv := batchFinalize(b, x, ap, bnorm, rr, stats, n, k, tol, act, true)
	if falseConv > 0 {
		return stats, fmt.Errorf("%w: CGBatch false convergence after %d iterations, %d of %d columns met tol %.1e in the recurrence but exceed the true-residual limit %.1e", ErrDiverged, iters, falseConv, k, tol, falseConvergenceLimit(tol))
	}
	if failed > 0 {
		return stats, fmt.Errorf("%w: CGBatch after %d iterations, %d of %d columns above tol", ErrNotConverged, iters, failed, k)
	}
	return stats, nil
}

// batchAbortStats fills the per-column stats of a batch solve that
// aborted mid-iteration (breakdown or health-guard trip): every
// still-active column reports its recurrence residual unconverged at
// the abort iteration; a column frozen earlier by the convergence test
// is reported converged with its recurrence residual (batchFinalize
// never runs on abort paths). Zero-RHS columns were finalized exactly
// and keep their stats.
func batchAbortStats(stats []Stats, act []bool, rr, bnorm []float64, iters, k int) {
	for q := 0; q < k; q++ {
		if act[q] {
			stats[q].Iterations = iters
			stats[q].RelResidual = math.Sqrt(rr[q]) / bnorm[q]
		} else if !stats[q].Converged {
			stats[q].RelResidual = math.Sqrt(rr[q]) / bnorm[q]
			stats[q].Converged = true
		}
	}
}

// batchFinalize fills per-column RelResidual and Converged from the
// product ax = A*x and returns the number of unconverged columns plus
// how many of those are false convergences. When metByRecurrence is
// true, a column whose recurrence already met the tolerance (act[j]
// false) counts as converged as long as the true residual is within
// falseConvergenceSlack of the tolerance, matching CG's Stats
// contract.
func batchFinalize(b, x, ax, bnorm, rr []float64, stats []Stats, n, k int, tol float64, act []bool, metByRecurrence bool) (int, int) {
	for j := 0; j < k; j++ {
		rr[j] = 0
	}
	for i := 0; i < n; i++ {
		base := i * k
		axb := ax[base : base+k]
		bb := b[base : base+k]
		for j := range axb {
			ri := bb[j] - axb[j]
			rr[j] += ri * ri
		}
	}
	failed, falseConv := 0, 0
	for j := 0; j < k; j++ {
		nb := bnorm[j]
		if nb == 0 {
			nb = 1
		}
		rel := math.Sqrt(rr[j]) / nb
		if metByRecurrence && stats[j].Converged {
			// Zero-RHS columns were finalized exactly; keep their stats.
			continue
		}
		stats[j].RelResidual = rel
		// A column frozen by the recurrence test is converged only while
		// the true residual stays under the false-convergence limit;
		// beyond it the recurrence has lied and the column is a failure,
		// not an answer.
		froze := metByRecurrence && !act[j]
		stats[j].Converged = rel < tol || (froze && (tol <= 0 || rel < falseConvergenceLimit(tol)))
		if !stats[j].Converged {
			failed++
			if froze {
				falseConv++
			}
		}
	}
	return failed, falseConv
}

// finalResidualWith computes ||b - Ax|| / bnorm using scratch as the
// residual buffer (its contents are overwritten).
func finalResidualWith(rt *par.Runtime, a sparse.Operator, b, x []float64, bnorm float64, scratch []float64) float64 {
	a.SpMV(rt, x, scratch)
	rr := 0.0
	for i := range scratch {
		ri := b[i] - scratch[i]
		rr += ri * ri
	}
	return math.Sqrt(rr) / bnorm
}
