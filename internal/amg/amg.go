// Package amg implements smoothed-aggregation algebraic multigrid
// (SA-AMG), the solver substrate of the paper's Table V experiment: a
// hierarchy built by repeatedly aggregating the matrix graph (with a
// pluggable aggregation scheme such as Algorithm 3), forming the smoothed
// prolongator P = (I - omega D^{-1} A) P0, and the Galerkin coarse
// operator R A P, solved by damped-Jacobi-smoothed V-cycles with a dense
// LU factorization on the coarsest level.
//
//amg:deterministic
package amg

import (
	"context"
	"errors"
	"fmt"
	"math"

	"mis2go/internal/coarsen"
	"mis2go/internal/graph"
	"mis2go/internal/gs"
	"mis2go/internal/hash"
	"mis2go/internal/par"
	"mis2go/internal/sparse"
)

// ErrCanceled is wrapped by every setup error caused by a canceled
// context (alongside the context's cause, so errors.Is also matches
// context.Canceled / context.DeadlineExceeded). The Ctx setup variants
// check between levels: a cancellation caught before the numeric phase
// mutates anything leaves the previous numeric state fully usable, while
// one caught between level replays invalidates the hierarchy exactly
// like any other mid-replay failure (Valid reports false).
var ErrCanceled = errors.New("amg: setup canceled")

// ErrBadValues is wrapped by every pre-mutation value rejection of the
// numeric phase — non-finite entries, values outside the float32 range
// of an f32 finest level, a zero or missing diagonal, a diagonal sign
// flip on Refresh. These are properties of the submitted values, not of
// the solver: no retry or escalation can fix them, so callers (the
// serve escalation ladder in particular) can classify them with
// errors.Is and fail fast instead of re-solving.
var ErrBadValues = errors.New("amg: matrix values unusable")

// ctxErr reports the context's cancellation state; nil contexts never
// cancel (the context-free entry points pass nil).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

func cancelAt(ctx context.Context, phase string, level int) error {
	return fmt.Errorf("%w: %s stopped before level %d: %w", ErrCanceled, phase, level, context.Cause(ctx))
}

// AggregateFunc produces an aggregation of the given matrix graph.
type AggregateFunc func(g *graph.CSR) coarsen.Aggregation

// Smoother selects the level relaxation method.
type Smoother int

const (
	// SmootherJacobi is damped Jacobi, the paper's Table V setup.
	SmootherJacobi Smoother = iota
	// SmootherChebyshev is a Chebyshev polynomial smoother (the common
	// MueLu alternative; an extension beyond the paper's configuration).
	SmootherChebyshev
	// SmootherPointSGS relaxes with point multicolor symmetric
	// Gauss-Seidel (§III-C), set up per level during Build.
	SmootherPointSGS
	// SmootherClusterSGS relaxes with cluster multicolor symmetric
	// Gauss-Seidel (Algorithm 4), clusters from each level's aggregation.
	SmootherClusterSGS
)

// Options configures hierarchy construction. Zero values select the
// defaults noted on each field.
type Options struct {
	// Aggregate selects the aggregation scheme; default is Algorithm 3
	// (coarsen.MIS2Aggregation).
	Aggregate AggregateFunc
	// MaxLevels caps the hierarchy depth (default 10).
	MaxLevels int
	// MinCoarseSize stops coarsening once a level is this small
	// (default 200); that level is solved directly.
	MinCoarseSize int
	// UnsmoothedProlongator disables prolongator smoothing (plain
	// aggregation AMG instead of SA-AMG).
	UnsmoothedProlongator bool
	// JacobiDamping is the damping factor for the level smoother
	// (default 2/3).
	JacobiDamping float64
	// PreSweeps and PostSweeps are the smoothing sweep counts per
	// V-cycle (default 2 and 2: "2 sweeps of the Jacobi method" as in
	// Table V's setup).
	PreSweeps, PostSweeps int
	// Smoother selects the relaxation method (default SmootherJacobi).
	Smoother Smoother
	// ChebyshevDegree is the polynomial degree when Smoother is
	// SmootherChebyshev (default 2). PreSweeps/PostSweeps then count
	// polynomial applications.
	ChebyshevDegree int
	// ChebyshevRatio is the eigenvalue interval ratio
	// lambda_max / lambda_min targeted by the polynomial (default 20, as
	// in MueLu).
	ChebyshevRatio float64
	// Format selects the storage layout of each level's operator for the
	// apply-side kernels (V-cycle residuals, Jacobi/Chebyshev sweeps).
	// The default FormatAuto converts large regular levels (fine mesh
	// Laplacians) to SELL-C-sigma and keeps small or irregular levels
	// (coarse Galerkin operators) on CSR; the setup-side SpGEMM plans
	// always stay on CSR, as does the coarsest level (solved densely, its
	// operator is never applied). Formats are bit-compatible: results
	// never depend on the choice.
	Format sparse.Format
	// SellSigma is the SELL-C-sigma sort scope (0 = the sparse package
	// default; any other value must be a positive multiple of the chunk
	// size and is validated under every Format, so a configuration typo
	// fails fast — see sparse.CheckSigma). The scope itself only takes
	// effect when a level converts to SELL.
	SellSigma int
	// Precision selects the value storage width of the apply-side level
	// operators (and the prolongator/restriction transfer kernels):
	// PrecisionF64 (default) stores everything in float64; PrecisionF32
	// stores f32 values on every level; PrecisionAuto keeps the finest
	// level f64 and stores f32 below it. The setup side — diagonals,
	// spectral-radius estimates, SpGEMM plan replays, the dense coarsest
	// solve — always computes in float64 from the CSR matrices, and every
	// f32 kernel accumulates in float64, so each precision is bitwise
	// deterministic across formats and worker counts. See DESIGN.md
	// ("Mixed precision").
	Precision sparse.Precision
	// Threads is the worker count (0 = GOMAXPROCS).
	Threads int
}

// levelPrecision resolves the Precision policy for one level's
// apply-side operator: PrecisionAuto keeps the finest level (the one
// whose residual feeds convergence detection) at full precision and
// stores f32 below it.
func (o Options) levelPrecision(level int) sparse.Precision {
	switch o.Precision {
	case sparse.PrecisionF32:
		return sparse.PrecisionF32
	case sparse.PrecisionAuto:
		if level > 0 {
			return sparse.PrecisionF32
		}
	}
	return sparse.PrecisionF64
}

func (o Options) withDefaults() Options {
	if o.Aggregate == nil {
		threads := o.Threads
		o.Aggregate = func(g *graph.CSR) coarsen.Aggregation {
			return coarsen.MIS2Aggregation(g, coarsen.Options{Threads: threads})
		}
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 10
	}
	if o.MinCoarseSize <= 0 {
		o.MinCoarseSize = 200
	}
	if o.JacobiDamping == 0 {
		o.JacobiDamping = 2.0 / 3.0
	}
	if o.PreSweeps == 0 {
		o.PreSweeps = 2
	}
	if o.PostSweeps == 0 {
		o.PostSweeps = 2
	}
	if o.ChebyshevDegree <= 0 {
		o.ChebyshevDegree = 2
	}
	if o.ChebyshevRatio <= 1 {
		o.ChebyshevRatio = 20
	}
	return o
}

// Level is one rung of the hierarchy.
type Level struct {
	A    *sparse.Matrix
	P    *sparse.Matrix // prolongator to this level from the next coarser (nil on coarsest)
	R    *sparse.Matrix // restriction (P^T)
	Agg  coarsen.Aggregation
	dinv []float64
	// op is the apply-side view of A in the level's chosen format and
	// precision (A itself for f64 CSR; a SELL/CSR32/SELL32 conversion
	// otherwise). The setup side (plan replays, graph extraction) always
	// works on the CSR A.
	op sparse.Operator
	// fill is non-nil when op caches values (SELL, CSR32, SELL32); the
	// numeric phase refreshes them through the cached entry schedule.
	fill sparse.ValueFiller
	// pop/rop are the apply-side views of P and R used by the V-cycle's
	// transfer kernels (P and R themselves at full precision; CSR32
	// conversions when the coarse side of the transfer is f32), with
	// pFill/rFill their refresh surfaces.
	pop, rop     sparse.Operator
	pFill, rFill sparse.ValueFiller
	// rho is the estimated spectral radius of D^{-1}A on this level,
	// used by prolongator smoothing and the Chebyshev smoother.
	rho float64
	// gsOp is the multicolor Gauss-Seidel operator when an SGS smoother
	// is selected (nil otherwise).
	gsOp *gs.Multicolor
	// Scratch vectors sized to this level.
	x, b, r, d []float64
}

// levelPlan holds the cached symbolic state of one level's setup: the
// tentative prolongator (whose values depend only on aggregate sizes,
// i.e. on the pattern), the SpGEMM plans for the smoothed prolongator,
// its transpose, and the Galerkin product, and — for the cluster-SGS
// smoother — the level's cluster aggregation. Everything here is a pure
// function of the fine matrix's sparsity pattern, so BuildNumeric and
// Refresh replay it for any same-pattern values.
type levelPlan struct {
	p0     *sparse.Matrix
	smooth *sparse.SmoothPlan
	trans  *sparse.TransposePlan
	rap    *sparse.RAPPlan
	sgsAgg *coarsen.Aggregation
}

// Hierarchy is a built SA-AMG preconditioner. It implements
// krylov.Preconditioner via Precondition (one V-cycle, zero initial
// guess).
//
// Concurrency: a Hierarchy is single-caller mutable state — Precondition,
// Solve, BuildNumeric, and Refresh all write the level scratch vectors
// (and the latter two the level operators), so no two of them may run
// concurrently on one instance. Distinct hierarchies are independent and
// may be used from any number of goroutines (they share only the
// process-wide worker pool, which is concurrency-safe). A serving layer
// that multiplexes goroutines onto hierarchies must hold a per-hierarchy
// lock across every call; internal/serve does exactly that.
type Hierarchy struct {
	Levels []*Level
	coarse *sparse.Dense
	opt    Options
	rt     *par.Runtime
	// plans holds one cached symbolic plan per level (the coarsest
	// level's plan carries no SpGEMM state).
	plans []*levelPlan
	// fing fingerprints the fine-level sparsity pattern the symbolic
	// phase was built for; BuildNumeric and Refresh reject mismatches.
	fing uint64
	// diagPos[i] is the entry index of row i's diagonal in the fine
	// pattern (-1 when absent) — pattern-derived, computed once in the
	// symbolic phase so the pre-mutation value validation of every
	// numeric pass gathers diagonals instead of re-searching rows.
	diagPos []int
	// valid is true when the numeric phase has completed successfully:
	// a numeric error (zero diagonal surfacing on a coarse Galerkin
	// level, degenerate spectral radius) aborts mid-replay and leaves
	// the levels half-refreshed, so Precondition and Solve refuse to run
	// until a later BuildNumeric or Refresh succeeds. Pre-mutation
	// rejections (pattern mismatch, non-finite values, zero/missing/
	// sign-flipped fine diagonal — see validateValues) leave validity
	// untouched.
	valid bool
	// solveR is the fine-level residual scratch of Solve, preallocated
	// so stationary iterations allocate nothing.
	solveR []float64
}

// addInto computes x += d elementwise.
//
//amg:hotpath
func addInto(rt *par.Runtime, x, d []float64) {
	n := len(x)
	if rt.Serial(n) {
		for i := 0; i < n; i++ {
			x[i] += d[i]
		}
		return
	}
	rt.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] += d[i]
		}
	})
}

// Build constructs the hierarchy for SPD matrix a. It is the composition
// of the symbolic and numeric phases: BuildSymbolic derives everything
// that depends only on the sparsity pattern (graphs, MIS-2 aggregation,
// the tentative prolongator, cached SpGEMM plans, level storage) and
// BuildNumeric fills in everything value-dependent (diagonals, spectral
// radii, plan replays, the coarse factorization). The split produces
// hierarchies bitwise identical to the seed's fused construction.
func Build(a *sparse.Matrix, opt Options) (*Hierarchy, error) {
	return BuildCtx(nil, a, opt)
}

// BuildCtx is Build with cooperative cancellation, checked between
// levels of both setup phases. A canceled build returns an error
// wrapping ErrCanceled (and the context's cause) and no hierarchy; no
// partially built hierarchy escapes. ctx may be nil (never cancels).
func BuildCtx(ctx context.Context, a *sparse.Matrix, opt Options) (*Hierarchy, error) {
	h, err := BuildSymbolicCtx(ctx, a, opt)
	if err != nil {
		return nil, err
	}
	if err := h.BuildNumericCtx(ctx, a); err != nil {
		return nil, err
	}
	return h, nil
}

// BuildSymbolic runs the pattern-dependent half of setup for SPD matrix
// a: level graphs, aggregation, the tentative prolongator P0 (whose
// values are a function of aggregate sizes, i.e. of the pattern alone),
// the SpGEMM plans for prolongator smoothing / transposition / the
// Galerkin product, smoother cluster aggregations, and all level
// storage. The returned hierarchy is not usable until BuildNumeric fills
// in the values; a's values are read only by the initial Validate.
func BuildSymbolic(a *sparse.Matrix, opt Options) (*Hierarchy, error) {
	return BuildSymbolicCtx(nil, a, opt)
}

// BuildSymbolicCtx is BuildSymbolic with cooperative cancellation,
// checked once per level before that level's aggregation and plan
// construction. ctx may be nil (never cancels).
func BuildSymbolicCtx(ctx context.Context, a *sparse.Matrix, opt Options) (*Hierarchy, error) {
	opt = opt.withDefaults()
	if a.Rows != a.Cols {
		return nil, errors.New("amg: matrix must be square")
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("amg: invalid matrix: %w", err)
	}
	rt := par.New(opt.Threads)
	h := &Hierarchy{
		opt: opt, rt: rt,
		fing: hash.PatternFingerprint(a.Rows, a.Cols, a.RowPtr, a.Col),
	}
	h.diagPos = make([]int, a.Rows)
	for i := 0; i < a.Rows; i++ {
		h.diagPos[i] = -1
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if int(a.Col[p]) == i {
				h.diagPos[i] = p
				break
			}
		}
	}

	cur := a
	for level := 0; ; level++ {
		if err := ctxErr(ctx); err != nil {
			return nil, cancelAt(ctx, "symbolic setup", level)
		}
		l := &Level{A: cur}
		lp := &levelPlan{}
		l.dinv = make([]float64, cur.Rows)
		l.x = make([]float64, cur.Rows)
		l.b = make([]float64, cur.Rows)
		l.r = make([]float64, cur.Rows)
		l.d = make([]float64, cur.Rows)
		l.op = cur
		if opt.Smoother == SmootherClusterSGS {
			agg := coarsen.MIS2Aggregation(cur.GraphWith(rt), coarsen.Options{Threads: opt.Threads})
			lp.sgsAgg = &agg
		}
		h.Levels = append(h.Levels, l)
		h.plans = append(h.plans, lp)

		if cur.Rows <= opt.MinCoarseSize || level+1 >= opt.MaxLevels {
			break
		}

		g := cur.GraphWith(rt)
		agg := opt.Aggregate(g)
		if err := coarsen.Check(g, agg); err != nil {
			return nil, fmt.Errorf("amg: level %d aggregation: %w", level, err)
		}
		if agg.NumAggregates >= cur.Rows {
			break // no coarsening progress; stop here
		}
		l.Agg = agg

		// Choose the level's apply-side operator format and precision —
		// only now that the level is known not to be the coarsest (the
		// coarsest level is solved densely, its op never applied, so
		// converting it would be pure waste). The conversions are
		// pattern-only here (values land in BuildNumeric); the SELL row
		// sort and the value-replay entry schedules are part of the
		// symbolic state.
		op, err := sparse.NewOperatorPrec(cur, opt.Format, opt.SellSigma, opt.levelPrecision(level))
		if err != nil {
			return nil, fmt.Errorf("amg: level %d operator format: %w", level, err)
		}
		l.op = op
		if f, ok := op.(sparse.ValueFiller); ok {
			l.fill = f
		}

		p := coarsen.Prolongator(agg)
		if !opt.UnsmoothedProlongator {
			sp, err := sparse.PlanSmoothProlongator(rt, cur, p)
			if err != nil {
				return nil, fmt.Errorf("amg: level %d prolongator smoothing: %w", level, err)
			}
			lp.p0, lp.smooth = p, sp
			p = sp.NewMatrix()
		}
		lp.trans = sparse.PlanTranspose(rt, p)
		r := lp.trans.NewMatrix()
		rp, err := sparse.PlanRAP(rt, r, cur, p)
		if err != nil {
			return nil, fmt.Errorf("amg: level %d Galerkin product: %w", level, err)
		}
		lp.rap = rp
		l.P, l.R = p, r
		// The transfer kernels (restriction SpMV, prolongation SpMVAdd)
		// follow the precision of the coarse side they move data to and
		// from: under PrecisionAuto the fine level's residual stays f64
		// but the traffic into the f32 coarse hierarchy is f32.
		l.pop, l.rop = p, r
		if opt.levelPrecision(level+1) == sparse.PrecisionF32 {
			pop, err := sparse.NewCSR32(p)
			if err != nil {
				return nil, fmt.Errorf("amg: level %d prolongator precision: %w", level, err)
			}
			rop, err := sparse.NewCSR32(r)
			if err != nil {
				return nil, fmt.Errorf("amg: level %d restriction precision: %w", level, err)
			}
			l.pop, l.rop = pop, rop
			l.pFill, l.rFill = pop, rop
		}
		cur = rp.NewMatrix()
	}

	// Preallocate the dense coarse factorization (pattern-sized storage;
	// the sane-order bound catches misconfigured coarse sizes here,
	// before any numeric work).
	last := h.Levels[len(h.Levels)-1]
	dense, err := sparse.NewDense(last.A.Rows)
	if err != nil {
		return nil, fmt.Errorf("amg: coarse level: %w", err)
	}
	h.coarse = dense
	return h, nil
}

// BuildNumeric runs the values-only half of setup: level diagonals,
// spectral-radius estimates, smoother operators, the plan replays for
// the smoothed prolongator / restriction / Galerkin product chain, and
// the dense coarse factorization. a must carry the exact sparsity
// pattern BuildSymbolic saw (checked via fingerprint); its values may
// differ. Calling BuildNumeric again — or Refresh, its alias with
// re-setup semantics — replays the numeric phase in place.
func (h *Hierarchy) BuildNumeric(a *sparse.Matrix) error {
	return h.BuildNumericCtx(nil, a)
}

// BuildNumericCtx is BuildNumeric with cooperative cancellation, checked
// once before the replay mutates anything (the previous numeric state,
// if any, stays fully usable) and then between level replays (a cancel
// there invalidates the hierarchy exactly like any other mid-replay
// failure). ctx may be nil (never cancels).
func (h *Hierarchy) BuildNumericCtx(ctx context.Context, a *sparse.Matrix) error {
	if err := h.checkSamePattern(a); err != nil {
		return err
	}
	// A full numeric rebuild accepts any usable values — unlike Refresh
	// it carries no "same operator, updated values" contract, so no
	// sign consistency against the previous state is demanded and
	// repeated BuildNumeric calls stay history-independent.
	if err := h.validateValues(a, false); err != nil {
		return err
	}
	return h.numeric(ctx, a)
}

// Refresh re-runs the numeric setup phase for a matrix with the same
// sparsity pattern as the one the hierarchy was built for (a time step,
// Newton iteration, or parameter sweep with changing values): cached
// SpGEMM plans are replayed, level matrices and the coarse factorization
// are refilled in place, and the MIS-2 aggregation and all pattern work
// are reused. The pattern is checked via fingerprint and a mismatch is
// a clean error — Refresh never silently rebuilds. The refreshed
// hierarchy is bitwise identical to a fresh Build of the same matrix.
// With the default Jacobi (or Chebyshev) smoother a Refresh performs
// zero steady-state heap allocations; the Gauss-Seidel smoothers
// rebuild their color-set operators and allocate during that rebuild.
//
// All foreseeable rejections happen before any level state is touched —
// pattern mismatch, non-finite values, and a zero, missing, or
// sign-flipped fine diagonal are validated up front (see validateValues)
// — so a rejected Refresh leaves the previous operator fully usable. An
// error during the numeric replay itself (a zero diagonal surfacing only
// on a coarse Galerkin level, a degenerate spectral radius) still leaves
// the levels half-refreshed: the hierarchy is invalidated (Valid reports
// false) and Precondition/Solve panic until a subsequent Refresh or
// BuildNumeric succeeds.
func (h *Hierarchy) Refresh(a *sparse.Matrix) error {
	return h.RefreshCtx(nil, a)
}

// RefreshCtx is Refresh with cooperative cancellation, with the same
// two-zone semantics as BuildNumericCtx: a cancel caught before the
// replay touches level state is one more pre-mutation rejection (the
// previous operator stays fully usable, Valid unchanged), while a
// cancel between level replays invalidates the hierarchy like any other
// mid-replay failure. ctx may be nil (never cancels).
func (h *Hierarchy) RefreshCtx(ctx context.Context, a *sparse.Matrix) error {
	if err := h.checkSamePattern(a); err != nil {
		return err
	}
	if err := h.validateValues(a, h.valid); err != nil {
		return err
	}
	return h.numeric(ctx, a)
}

// checkSamePattern verifies that a matches the symbolic phase's fine
// matrix in shape and pattern (fingerprint).
func (h *Hierarchy) checkSamePattern(a *sparse.Matrix) error {
	fine := h.Levels[0].A
	if a.Rows != fine.Rows || a.Cols != fine.Cols {
		return fmt.Errorf("amg: refresh matrix is %dx%d, hierarchy was built for %dx%d", a.Rows, a.Cols, fine.Rows, fine.Cols)
	}
	if len(a.Col) != len(fine.Col) || hash.PatternFingerprint(a.Rows, a.Cols, a.RowPtr, a.Col) != h.fing {
		return fmt.Errorf("amg: refresh matrix sparsity pattern differs from the symbolic setup (%d nnz vs %d); rebuild with BuildSymbolic for a new pattern", len(a.Col), len(fine.Col))
	}
	return nil
}

// validateValues rejects value sets that cannot produce a usable numeric
// state, before the replay mutates anything: non-finite entries, rows
// whose diagonal is zero or absent (every level diagonal inversion and
// smoother needs it), and — with checkSign, the Refresh contract —
// fine diagonal entries whose sign flipped relative to the current
// operator, the classic symptom of a corrupted or mis-assembled
// re-setup matrix (an SPD operator turning indefinite). Catching all of
// these up front is what lets a rejected Refresh leave the previous
// operator fully usable. checkSign must only be set when the hierarchy
// holds a valid numeric state (dinv is read as the previous diagonal's
// sign).
func (h *Hierarchy) validateValues(a *sparse.Matrix, checkSign bool) error {
	for p, v := range a.Val {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite value at entry %d", ErrBadValues, p)
		}
	}
	// An f32 finest level additionally needs every fine value inside the
	// float32 range; checking here (not mid-replay) keeps overflow a
	// pre-mutation rejection with the previous operator still serving.
	// Coarse-level or smoothed-prolongator values derived out of range
	// can only surface during the replay and invalidate like any other
	// mid-replay failure.
	if h.opt.levelPrecision(0) == sparse.PrecisionF32 {
		if err := sparse.CheckF32Range(a.Val); err != nil {
			return fmt.Errorf("%w: %w", ErrBadValues, err)
		}
	}
	prev := h.Levels[0].dinv // same sign as the previous diagonal (it is its inverse)
	for i, p := range h.diagPos {
		diag := 0.0
		if p >= 0 {
			diag = a.Val[p]
		}
		if diag == 0 {
			return fmt.Errorf("%w: zero diagonal at row %d of the fine matrix", ErrBadValues, i)
		}
		if checkSign && (diag > 0) != (prev[i] > 0) {
			return fmt.Errorf("%w: diagonal sign flip at row %d (was %g, now %g); refusing to refresh onto a structurally different operator",
				ErrBadValues, i, 1/prev[i], diag)
		}
	}
	return nil
}

// numeric fills every value-dependent piece of the hierarchy from a,
// replaying the cached plans level by level. Any error leaves the
// hierarchy invalidated (mid-replay state is inconsistent) until a
// subsequent numeric pass succeeds — except a cancellation caught by
// the entry check, which returns before anything is touched.
func (h *Hierarchy) numeric(ctx context.Context, a *sparse.Matrix) error {
	if err := ctxErr(ctx); err != nil {
		// Pre-mutation: the previous numeric state (if any) is untouched
		// and fully usable; h.valid is deliberately left as-is.
		return cancelAt(ctx, "numeric setup", 0)
	}
	rt := h.rt
	h.valid = false
	h.Levels[0].A = a
	for level, l := range h.Levels {
		if level > 0 {
			if err := ctxErr(ctx); err != nil {
				return cancelAt(ctx, "numeric setup", level)
			}
		}
		cur := l.A
		// Refresh the level's apply-side operator: value-caching formats
		// (SELL, CSR32, SELL32) gather the new values through their cached
		// entry schedules; plain f64 CSR levels just re-point (the fine
		// level's A was swapped above).
		if l.fill != nil {
			if err := l.fill.FillValues(cur); err != nil {
				return fmt.Errorf("amg: level %d operator refresh: %w", level, err)
			}
		} else {
			l.op = cur
		}
		cur.DiagonalInto(rt, l.dinv)
		for i, d := range l.dinv {
			if d == 0 {
				return fmt.Errorf("amg: zero diagonal at row %d of level %d", i, level)
			}
			l.dinv[i] = 1 / d
		}
		// The power iteration borrows the level's solve scratch (fully
		// overwritten before any solve reads it).
		l.rho = estimateSpectralRadius(rt, cur, l.dinv, 15, l.x, l.r)
		lp := h.plans[level]
		switch h.opt.Smoother {
		case SmootherPointSGS:
			op, err := gs.NewPoint(cur, h.opt.Threads)
			if err != nil {
				return fmt.Errorf("amg: level %d point SGS setup: %w", level, err)
			}
			l.gsOp = op
		case SmootherClusterSGS:
			op, err := gs.NewCluster(cur, *lp.sgsAgg, h.opt.Threads)
			if err != nil {
				return fmt.Errorf("amg: level %d cluster SGS setup: %w", level, err)
			}
			l.gsOp = op
		}
		if lp.rap == nil {
			break // coarsest level
		}
		if lp.smooth != nil {
			if l.rho <= 0 {
				// The fused seed build falls back to the unsmoothed P0
				// here, which would change the cached pattern; it can only
				// occur for degenerate (all-cancelling) operators.
				return fmt.Errorf("amg: level %d: non-positive spectral radius estimate; cannot replay the smoothed-prolongator pattern", level)
			}
			omega := (4.0 / 3.0) / l.rho
			// Replay (not Numeric): the fine pattern was fingerprint-checked
			// once in checkSamePattern and every other operand is
			// hierarchy-owned, so the per-plan O(nnz) re-verification would
			// only re-prove the same fact on every level.
			if err := lp.smooth.Replay(rt, cur, lp.p0, l.dinv, omega, l.P); err != nil {
				return fmt.Errorf("amg: level %d prolongator smoothing: %w", level, err)
			}
		}
		if err := lp.trans.Replay(rt, l.P, l.R); err != nil {
			return fmt.Errorf("amg: level %d restriction: %w", level, err)
		}
		// Refresh the f32 transfer views now that P and R carry their
		// final values for this numeric pass. Like any mid-replay failure,
		// an out-of-range smoothed value invalidates the hierarchy.
		if l.pFill != nil {
			if err := l.pFill.FillValues(l.P); err != nil {
				return fmt.Errorf("amg: level %d prolongator refresh: %w", level, err)
			}
			if err := l.rFill.FillValues(l.R); err != nil {
				return fmt.Errorf("amg: level %d restriction refresh: %w", level, err)
			}
		}
		if err := lp.rap.Replay(rt, l.R, cur, l.P, h.Levels[level+1].A); err != nil {
			return fmt.Errorf("amg: level %d Galerkin product: %w", level, err)
		}
	}

	// Refactor the coarsest level densely, in place.
	last := h.Levels[len(h.Levels)-1]
	if err := h.coarse.FillFrom(last.A); err != nil {
		return fmt.Errorf("amg: coarse level: %w", err)
	}
	if err := h.coarse.Factorize(); err != nil {
		return fmt.Errorf("amg: coarse factorization: %w", err)
	}
	h.valid = true
	return nil
}

// checkValid panics when the hierarchy's numeric state is unusable —
// either BuildNumeric never ran or the last numeric pass failed partway
// through. Precondition cannot return an error (krylov.Preconditioner),
// and solving with half-refreshed operators would silently corrupt
// results, so misuse fails loudly instead.
func (h *Hierarchy) checkValid() {
	if !h.valid {
		panic("amg: hierarchy has no valid numeric state (BuildNumeric never succeeded, or the last Refresh failed); run BuildNumeric/Refresh successfully before solving")
	}
}

// estimateSpectralRadius runs a deterministic power iteration on D^{-1}A
// using caller-provided scratch vectors x and y (length n, fully
// overwritten), so repeated numeric setups allocate nothing.
func estimateSpectralRadius(rt *par.Runtime, a *sparse.Matrix, dinv []float64, iters int, x, y []float64) float64 {
	n := a.Rows
	x = x[:n]
	y = y[:n]
	for i := range x {
		// Deterministic pseudo-random start vector.
		x[i] = 0.5 + float64((i*2654435761)%1024)/2048.0
	}
	lambda := 0.0
	for it := 0; it < iters; it++ {
		a.SpMV(rt, x, y)
		norm := 0.0
		for i := range y {
			y[i] *= dinv[i]
			if v := y[i]; v > norm {
				norm = v
			} else if -v > norm {
				norm = -v
			}
		}
		if norm == 0 {
			return 0
		}
		lambda = norm
		inv := 1 / norm
		for i := range y {
			x[i] = y[i] * inv
		}
	}
	return lambda
}

// Valid reports whether the hierarchy holds a usable numeric state:
// true after a successful BuildNumeric or Refresh, false before the
// first numeric pass and after a mid-replay numeric failure (in which
// case Precondition and Solve panic until a numeric pass succeeds).
// Pre-mutation rejections never change it.
func (h *Hierarchy) Valid() bool { return h.valid }

// NumLevels returns the hierarchy depth.
func (h *Hierarchy) NumLevels() int { return len(h.Levels) }

// Format reports the storage format of the level's apply-side operator.
func (l *Level) Format() sparse.Format {
	switch l.op.(type) {
	case *sparse.SELL, *sparse.SELL32:
		return sparse.FormatSELL
	}
	return sparse.FormatCSR
}

// Precision reports the value storage precision of the level's
// apply-side operator. The coarsest level reports f64 under every
// policy: it is solved by the dense f64 factorization and its operator
// is never applied.
func (l *Level) Precision() sparse.Precision {
	return sparse.OperatorPrecision(l.op)
}

// Precision reports the hierarchy's precision policy (the Options value
// it was built with; per-level resolution is Level.Precision).
func (h *Hierarchy) Precision() sparse.Precision { return h.opt.Precision }

// OperatorComplexity is the sum of nnz over all level operators divided by
// nnz of the fine operator — the standard AMG grid quality metric.
func (h *Hierarchy) OperatorComplexity() float64 {
	total := 0
	for _, l := range h.Levels {
		total += l.A.NNZ()
	}
	return float64(total) / float64(h.Levels[0].A.NNZ())
}

// Precondition applies one V-cycle with zero initial guess: z ≈ A^{-1} r.
//
//amg:hotpath
func (h *Hierarchy) Precondition(r, z []float64) {
	h.checkValid()
	for i := range z {
		z[i] = 0
	}
	copy(h.Levels[0].b, r)
	h.vcycle(0)
	copy(z, h.Levels[0].x)
}

// Solve runs stationary V-cycle iterations until the residual drops below
// tol*||b|| or maxIter cycles; mainly for tests and examples (use CG with
// Precondition for production solves).
func (h *Hierarchy) Solve(b, x []float64, tol float64, maxIter int) (int, float64) {
	h.checkValid()
	n := h.Levels[0].A.Rows
	if cap(h.solveR) < n {
		h.solveR = make([]float64, n)
	}
	r := h.solveR[:n]
	bnorm := norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	for it := 0; it < maxIter; it++ {
		h.Levels[0].A.SpMVResidual(h.rt, b, x, r)
		rel := norm2(r) / bnorm
		if rel < tol {
			return it, rel
		}
		copy(h.Levels[0].b, r)
		h.vcycle(0)
		addInto(h.rt, x, h.Levels[0].x)
	}
	h.Levels[0].A.SpMVResidual(h.rt, b, x, r)
	return maxIter, norm2(r) / bnorm
}

// vcycle runs one V-cycle on level l using l.b as right-hand side,
// leaving the correction in l.x. The level passes are fused: the
// residual's elementwise subtraction rides the SpMV traversal
// (SpMVResidual) feeding the restriction directly, and the coarse-grid
// correction rides the prolongation traversal (SpMVAdd) feeding the
// post-smoother — eliminating two full-vector passes per level relative
// to the unfused cycle, with bitwise-identical results.
//
//amg:hotpath
func (h *Hierarchy) vcycle(level int) {
	l := h.Levels[level]
	if level == len(h.Levels)-1 {
		h.coarse.Solve(l.b, l.x)
		return
	}
	for i := range l.x {
		l.x[i] = 0
	}
	h.smooth(l, h.opt.PreSweeps, true)
	// Fused residual + restriction: one traversal of A (in the level's
	// chosen format) writes r = b - A x, which the R traversal consumes
	// immediately.
	l.op.SpMVResidual(h.rt, l.b, l.x, l.r)
	next := h.Levels[level+1]
	l.rop.SpMV(h.rt, l.r, next.b)
	h.vcycle(level + 1)
	// Fused prolongation + correction: x += P e_c in one traversal,
	// handing the corrected iterate straight to the post-smoother.
	l.pop.SpMVAdd(h.rt, next.x, l.x)
	h.smooth(l, h.opt.PostSweeps, false)
}

// smooth dispatches to the configured relaxation method. xZero tells the
// smoother the iterate is exactly zero on entry (the pre-smoothing
// position of the V-cycle), enabling the first-sweep shortcut.
//
//amg:hotpath
func (h *Hierarchy) smooth(l *Level, sweeps int, xZero bool) {
	switch h.opt.Smoother {
	case SmootherChebyshev:
		for s := 0; s < sweeps; s++ {
			h.chebyshev(l)
		}
	case SmootherPointSGS, SmootherClusterSGS:
		l.gsOp.Apply(l.b, l.x, sweeps, true)
	default:
		h.jacobi(l, sweeps, xZero)
	}
}

// chebyshev applies one Chebyshev polynomial of the configured degree to
// l.A x = l.b, updating l.x in place. The polynomial targets the interval
// [rho/ratio, 1.1*rho] of D^{-1}A eigenvalues, as in MueLu/Ifpack2.
//
//amg:hotpath
func (h *Hierarchy) chebyshev(l *Level) {
	n := l.A.Rows
	rt := h.rt
	lmax := 1.1 * l.rho
	lmin := l.rho / h.opt.ChebyshevRatio
	theta := (lmax + lmin) / 2
	delta := (lmax - lmin) / 2
	sigma := theta / delta
	rhoOld := 1 / sigma

	// r = b - A x ; d = Dinv r / theta
	l.op.SpMV(rt, l.x, l.r)
	if rt.Serial(n) {
		chebInitRange(l, theta, 0, n)
	} else {
		rt.For(n, func(lo, hi int) { chebInitRange(l, theta, lo, hi) })
	}
	for k := 1; k < h.opt.ChebyshevDegree; k++ {
		addInto(rt, l.x, l.d)
		// Recompute the residual against the updated iterate (one extra
		// SpMV per degree, robust against drift).
		l.op.SpMV(rt, l.x, l.r)
		rhoNew := 1 / (2*sigma - rhoOld)
		coef1 := rhoNew * rhoOld
		coef2 := 2 * rhoNew / delta
		if rt.Serial(n) {
			chebStepRange(l, coef1, coef2, 0, n)
		} else {
			rt.For(n, func(lo, hi int) { chebStepRange(l, coef1, coef2, lo, hi) })
		}
		rhoOld = rhoNew
	}
	addInto(rt, l.x, l.d)
}

//amg:hotpath
func chebInitRange(l *Level, theta float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		l.r[i] = l.b[i] - l.r[i]
		l.d[i] = l.dinv[i] * l.r[i] / theta
	}
}

//amg:hotpath
func chebStepRange(l *Level, coef1, coef2 float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		r := l.b[i] - l.r[i]
		l.d[i] = coef1*l.d[i] + coef2*l.dinv[i]*r
	}
}

// jacobi runs damped Jacobi sweeps on l.A x = l.b, leaving the result in
// l.x. Each sweep is a single fused traversal of the level operator (the
// format-dispatched JacobiSweep kernel): the row product, the
// damped-diagonal update, and the write of the new iterate happen per
// row, ping-ponging between l.x and the l.d scratch instead of staging
// the product in l.r (Jacobi needs the full old iterate, so the new one
// goes to the other buffer — in-place would turn rows into Gauss-Seidel
// updates and break determinism). When xZero is set the first sweep
// skips the traversal entirely: A*0 is exactly zero, so the sweep
// reduces to x = omega*Dinv*b, bitwise identical to the general form.
//
//amg:hotpath
func (h *Hierarchy) jacobi(l *Level, sweeps int, xZero bool) {
	n := l.A.Rows
	omega := h.opt.JacobiDamping
	x, xn := l.x, l.d
	for s := 0; s < sweeps; s++ {
		// src/dst are loop-local copies: the closures below must not
		// capture the reassigned x/xn, which would box them on the heap
		// even on the closure-free serial path.
		src, dst := x, xn
		if xZero && s == 0 {
			if h.rt.Serial(n) {
				jacobiZeroRange(l, omega, dst, 0, n)
			} else {
				h.rt.For(n, func(lo, hi int) { jacobiZeroRange(l, omega, dst, lo, hi) })
			}
		} else {
			l.op.JacobiSweep(h.rt, l.b, l.dinv, omega, src, dst)
		}
		x, xn = xn, x
	}
	if sweeps%2 == 1 {
		// The final iterate landed in the scratch buffer; swap the level's
		// slice headers so l.x names it (both are level-sized scratch).
		l.x, l.d = x, xn
	}
}

// jacobiZeroRange is the first pre-smoothing sweep with a zero iterate:
// dst = omega*Dinv*b without touching A.
//
//amg:hotpath
func jacobiZeroRange(l *Level, omega float64, dst []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = omega * l.dinv[i] * l.b[i]
	}
}

//amg:hotpath
func norm2(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}
