// Sharded solves: the domain-decomposed path for requests too large to
// treat as one cache entry (Config.ShardThreshold). The request's
// pattern is partitioned once into a shard head — the layout (k-way
// partition + overlapped row sets), the coarse level, and the
// service-owned value buffer — and each subdomain's local solver lives
// in its own cache entry, keyed pattern × partition × subdomain, in the
// same LRU as single-hierarchy entries. The solve is an outer
// Schwarz-preconditioned krylov.CGCtx whose subdomain applies fan
// across the shared worker pool, so many concurrent sharded requests
// interleave subdomain work.
//
// Caching economics per subdomain, mirroring the single-hierarchy
// entry: a missing subdomain pays a local build, a cached subdomain
// whose values changed pays a numeric-only Refresh (value gather +
// refactorization or AMG plan replay), and a subdomain whose rows are
// bitwise untouched pays nothing — so a localized value update
// refreshes only the subdomains it touches.
//
// Blast radii follow PR 6's rules, narrowed to the component: a failed
// or panicked subdomain build/refresh retires only that subdomain's
// entry (the head and the other subdomains stay warm; the next request
// rebuilds just the casualty), a deep head failure (coarse-level replay
// gone wrong mid-mutation) retires the head — subdomain entries of the
// orphaned generation are never reused, because each pins its owning
// head — and cancellation never corrupts anything: it is honored only
// at points where the cached state is consistent.
//
// Determinism: a sharded served solve is bitwise identical to a
// sequential single-caller Schwarz-CG solve of the same system with the
// same options (the facade's SolveSharded), for any worker count and
// any cache state — the partition is deterministic, subdomain applies
// use fixed one-block-per-subdomain blocking with serial accumulation,
// and refreshed local solvers are bitwise identical to freshly built
// ones.
package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"mis2go/internal/hash"
	"mis2go/internal/krylov"
	"mis2go/internal/schwarz"
	"mis2go/internal/sparse"
)

// Salts separating the three key spaces of the shared cache index:
// plain pattern fingerprints (unsalted), shard heads, and shard
// subdomains. Arbitrary distinct odd constants.
const (
	shardHeadSalt uint64 = 0x53484541445F4B45 // "SHEAD_KE"
	shardSubSalt  uint64 = 0x5348415244535542 // "SHARDSUB"
)

// shardHeadKey keys the head node for a pattern fingerprint.
func shardHeadKey(patternFP uint64) uint64 {
	return hash.Finalize(hash.Combine(hash.Combine(hash.FingerprintSeed, shardHeadSalt), patternFP))
}

// shardSubKey keys subdomain i of a pattern × partition pair.
func shardSubKey(patternFP, partitionFP uint64, i int) uint64 {
	h := hash.Combine(hash.FingerprintSeed, shardSubSalt)
	h = hash.Combine(h, patternFP)
	h = hash.Combine(h, partitionFP)
	h = hash.Combine(h, uint64(i))
	return hash.Finalize(h)
}

// shardHead is the per-pattern root of a sharded decomposition: the
// partition layout, the coarse level, the service-owned copy of the
// current values (what every cached subdomain's numeric state was built
// from), and the keys of its subdomain entries. key/rows/cols/nnz are
// immutable; elem belongs to the index; the rest is guarded by mu. The
// head lock serializes all setup for the pattern (build, value refresh,
// subdomain ensure) — the same single-flight rule as entry.mu — while
// solves run outside it, gated only by the pending count so a refresh
// never mutates subdomains under an in-flight solve.
type shardHead struct {
	key             uint64
	rows, cols, nnz int

	mu   sync.Mutex
	cond *sync.Cond // signaled when pending drops to zero
	lay  *schwarz.Layout
	// coarse is the second level, owned by the head (it is pattern-wide,
	// not per-subdomain). nil until built; reset to nil retires the head.
	coarse *schwarz.Coarse
	// fine holds the values the cached numeric state reflects. Cached
	// subdomains owned by this head are always in sync with fine: the
	// refresh path updates fine and every cached subdomain in one
	// critical section, dropping any subdomain whose refresh failed.
	fine *sparse.Matrix
	// subKeys caches the per-subdomain index keys (pattern × partition
	// × index).
	subKeys []uint64
	// pending counts in-flight solves using this head's components;
	// values and cached subdomains may not be mutated while it is
	// positive.
	pending int
	// refreshWaiters counts requests parked on cond until pending
	// drains so they can refresh values under the drained head.
	refreshWaiters int

	elem *list.Element
}

func (h *shardHead) cacheKey() uint64            { return h.key }
func (h *shardHead) lruElem() *list.Element      { return h.elem }
func (h *shardHead) setLRUElem(el *list.Element) { h.elem = el }

// reset retires the head's solver state (must hold h.mu): the next
// request rebuilds the layout and coarse level — a new generation, so
// subdomain entries pinned to this head are never reused.
func (h *shardHead) reset() {
	h.lay, h.coarse, h.fine, h.subKeys = nil, nil, nil, nil
}

// shardSub is one cached subdomain: the local solver plus the head
// generation it was built from. The struct is immutable after indexing
// (the solver's internal numeric state mutates only under the owning
// head's drain + lock discipline); owner pinning is what prevents a
// rebuilt head from adopting stale local solvers — an owner mismatch
// reads as a miss.
type shardSub struct {
	key   uint64
	owner *shardHead
	sd    *schwarz.Subdomain

	elem *list.Element
}

func (n *shardSub) cacheKey() uint64            { return n.key }
func (n *shardSub) lruElem() *list.Element      { return n.elem }
func (n *shardSub) setLRUElem(el *list.Element) { n.elem = el }

// schwarzOptions is the option set of every sharded preconditioner the
// service builds. The facade's SolveSharded constructs the identical
// set, which is what makes served sharded solves bitwise comparable to
// the sequential reference.
func (s *Service) schwarzOptions() schwarz.Options {
	return schwarz.Options{Subdomains: s.cfg.ShardSubdomains, Threads: s.cfg.Threads}
}

// lookupShard returns the head node for the key, creating it as needed,
// with the same shape pre-check and collision discipline as lookup.
func (s *Service) lookupShard(key uint64, a *sparse.Matrix) (h *shardHead, collision bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if node, ok := s.entries[key]; ok {
		h, ok := node.(*shardHead)
		if !ok || h.rows != a.Rows || h.cols != a.Cols || h.nnz != a.NNZ() {
			s.m.collisions.Add(1)
			return nil, true
		}
		s.lru.MoveToFront(h.elem)
		return h, false
	}
	h = &shardHead{key: key, rows: a.Rows, cols: a.Cols, nnz: a.NNZ()}
	h.cond = sync.NewCond(&h.mu)
	s.index(h)
	return h, false
}

// getSub returns the cached subdomain node under key owned by h, or nil
// on a miss (absent, a different node kind under a colliding key, or an
// orphan of a retired head generation).
func (s *Service) getSub(key uint64, h *shardHead) *shardSub {
	s.mu.Lock()
	defer s.mu.Unlock()
	node, ok := s.entries[key]
	if !ok {
		return nil
	}
	sub, ok := node.(*shardSub)
	if !ok || sub.owner != h {
		return nil
	}
	s.lru.MoveToFront(sub.elem)
	return sub
}

// solveSharded serves one request on the domain-decomposed path: ensure
// the shard head (partition layout + coarse level + current values),
// ensure every subdomain's local solver against those values, assemble
// a request-local Schwarz preconditioner over the shared components,
// and run the outer CG outside the head lock.
func (s *Service) solveSharded(ctx context.Context, a *sparse.Matrix, bs [][]float64, st *RequestStats, patternFP uint64) ([][]float64, RequestStats, error) {
	st.Sharded = true
	s.m.shardedRequests.Add(1)
	h, collision := s.lookupShard(shardHeadKey(patternFP), a)
	if collision {
		// Collisions bypass the cache entirely; the single-hierarchy
		// uncached path is correct at any size, just unsharded.
		return s.solveUncached(ctx, a, bs, st)
	}

	h.mu.Lock()
	for {
		if err := ctx.Err(); err != nil {
			h.mu.Unlock()
			return nil, *st, fmt.Errorf("serve: canceled before solve: %w", context.Cause(ctx))
		}
		if h.lay == nil {
			if h.pending > 0 {
				// Reset while solves pinned to the old generation are in
				// flight; wait for them to observe it and drain.
				h.refreshWaiters++
				h.cond.Wait()
				h.refreshWaiters--
				continue
			}
			if err := s.buildShardHead(ctx, h, a, patternFP); err != nil {
				if errors.Is(err, ErrPanic) {
					s.m.panics.Add(1)
				}
				h.mu.Unlock()
				s.drop(h)
				return nil, *st, fmt.Errorf("serve: shard head build: %w", err)
			}
			st.Outcome = OutcomeBuild
			s.m.builds.Add(1)
			break
		}
		if !samePattern(h.fine, a) {
			// Equal-shape fingerprint collision on the head key.
			h.mu.Unlock()
			s.m.collisions.Add(1)
			return s.solveUncached(ctx, a, bs, st)
		}
		if sameValues(h.fine.Val, a.Val) {
			// Cached values match bitwise. Evicted subdomains may still
			// need rebuilding below, but that only creates new nodes —
			// legal under in-flight solves, no drain needed.
			st.Outcome = OutcomeReuse
			s.m.valueHits.Add(1)
			break
		}
		if h.pending > 0 {
			// In-flight solves are pinned to the current values; a
			// refresh must wait for them to drain (re-check everything
			// on wake, like the single-hierarchy path).
			h.refreshWaiters++
			h.cond.Wait()
			h.refreshWaiters--
			continue
		}
		var mutated bool
		if err := s.refreshShardHead(ctx, h, a, &mutated); err != nil {
			panicked := errors.Is(err, ErrPanic)
			if panicked {
				s.m.panics.Add(1)
			}
			if panicked || mutated {
				// The value buffer mutated (or a panic struck) before the
				// failure: the head's state no longer matches any coherent
				// operator. Retire the whole generation (subdomain orphans
				// die by owner pinning).
				h.reset()
				h.cond.Broadcast()
				h.mu.Unlock()
				s.drop(h)
			} else {
				// Pre-mutation rejection (fault-gate failure before the
				// values were touched): the cached state survives.
				h.mu.Unlock()
			}
			return nil, *st, fmt.Errorf("serve: shard refresh: %w", err)
		}
		st.Outcome = OutcomeRefresh
		s.m.refreshes.Add(1)
		break
	}

	// Ensure every subdomain's local solver against h.fine, still under
	// the head lock (single-flight per pattern). On the reuse path the
	// cached values already match, so cached subdomains are guaranteed
	// in sync and only evicted ones need rebuilding.
	subs, err := s.ensureSubs(ctx, h)
	if err != nil {
		h.mu.Unlock()
		return nil, *st, err
	}
	st.Subdomains = len(subs)
	// Re-front the head after its subdomains were (re)indexed: losing
	// the head orphans every subdomain of its generation, so under LRU
	// pressure the subdomains must go first.
	s.touch(h)

	p, err := schwarz.Assemble(s.rt, h.lay, subs, h.coarse)
	if err != nil {
		// Unreachable by construction (ensureSubs returns one solver
		// per layout set); fail the request, keep the cache.
		h.mu.Unlock()
		return nil, *st, fmt.Errorf("serve: shard assemble: %w", err)
	}
	h.pending++
	h.mu.Unlock()

	xs, rst, err := s.runShardSolve(ctx, a, bs, p, st)

	h.mu.Lock()
	h.pending--
	if h.pending == 0 {
		h.cond.Broadcast()
	}
	h.mu.Unlock()
	return xs, rst, err
}

// buildShardHead runs the head construction critical section with panic
// isolation: partition layout, coarse level, value buffer, subdomain
// keys. Called with h.mu held; every field is assigned only after the
// last fallible step.
func (s *Service) buildShardHead(ctx context.Context, h *shardHead, a *sparse.Matrix, patternFP uint64) (err error) {
	defer recoverTo(&err)
	if err := s.fault(FaultBuild, ctx); err != nil {
		return err
	}
	fine := a.Clone()
	opt := s.schwarzOptions()
	lay, err := schwarz.NewLayout(fine, opt)
	if err != nil {
		return err
	}
	coarse, err := schwarz.NewCoarse(s.rt, fine, lay, opt)
	if err != nil {
		return err
	}
	keys := make([]uint64, len(lay.Sets))
	for i := range keys {
		keys[i] = shardSubKey(patternFP, lay.PartitionFP, i)
	}
	h.lay, h.coarse, h.fine, h.subKeys = lay, coarse, fine, keys
	return nil
}

// refreshShardHead installs the request's values and replays the coarse
// level, with panic isolation. Called with h.mu held and h.pending ==
// 0. mutated reports whether the value buffer was touched before a
// failure: if so (or on a contained panic) the head's state has
// diverged from the cached subdomains and the caller retires it;
// otherwise the cached state is untouched and survives.
func (s *Service) refreshShardHead(ctx context.Context, h *shardHead, a *sparse.Matrix, mutated *bool) (err error) {
	defer recoverTo(&err)
	if err := s.fault(FaultRefresh, ctx); err != nil {
		return err
	}
	*mutated = true
	copy(h.fine.Val, a.Val)
	return h.coarse.Refresh(s.rt, h.fine)
}

// ensureSubs brings every subdomain's local solver in sync with h.fine
// and returns them in layout order: cached and bitwise in-sync → reuse;
// cached with stale values → numeric-only Refresh; missing (never
// built, evicted, or orphaned by a head rebuild) → build. Builds and
// refreshes fan out on plain goroutines — not the worker pool, whose
// workers do not contain panics — each under its own recovery, so a
// panicked or failed subdomain retires only that subdomain's entry and
// the rest complete and stay cached. Called with h.mu held.
func (s *Service) ensureSubs(ctx context.Context, h *shardHead) ([]*schwarz.Subdomain, error) {
	n := len(h.subKeys)
	subs := make([]*schwarz.Subdomain, n)
	type job struct {
		i    int
		node *shardSub // nil: build; non-nil: refresh this node's solver
	}
	var jobs []job
	for i, key := range h.subKeys {
		if node := s.getSub(key, h); node != nil {
			if node.sd.SameValues(h.fine) {
				subs[i] = node.sd
				s.m.subReuses.Add(1)
				continue
			}
			// Stale values can only be observed on the refresh path,
			// where the caller has drained h.pending: mutating is safe.
			jobs = append(jobs, job{i, node})
			continue
		}
		jobs = append(jobs, job{i, nil})
	}
	if len(jobs) == 0 {
		return subs, nil
	}

	type result struct {
		i    int
		node *shardSub // freshly built node to index (nil for refreshes)
		err  error
	}
	results := make([]result, len(jobs))
	var wg sync.WaitGroup
	for ji, jb := range jobs {
		wg.Add(1)
		go func(ji int, jb job) {
			defer wg.Done()
			res := &results[ji]
			res.i = jb.i
			defer recoverTo(&res.err)
			if jb.node != nil {
				if err := s.fault(FaultRefresh, ctx); err != nil {
					res.err = err
					return
				}
				res.err = jb.node.sd.Refresh(h.fine)
				return
			}
			if err := s.fault(FaultBuild, ctx); err != nil {
				res.err = err
				return
			}
			sd, err := schwarz.NewSubdomain(h.fine, h.lay.Sets[jb.i], s.schwarzOptions())
			if err != nil {
				res.err = err
				return
			}
			res.node = &shardSub{key: h.subKeys[jb.i], owner: h, sd: sd}
		}(ji, jb)
	}
	wg.Wait()

	var firstErr error
	for ji, res := range results {
		jb := jobs[ji]
		switch {
		case res.err == nil && res.node != nil:
			s.mu.Lock()
			s.index(res.node)
			s.mu.Unlock()
			subs[res.i] = res.node.sd
			s.m.subBuilds.Add(1)
		case res.err == nil:
			subs[res.i] = jb.node.sd
			s.m.subRefreshes.Add(1)
		default:
			if errors.Is(res.err, ErrPanic) {
				s.m.panics.Add(1)
			}
			if jb.node != nil {
				// A failed refresh leaves this solver out of sync with
				// h.fine: retire exactly this subdomain's entry. The
				// head and every other subdomain stay warm.
				s.drop(jb.node)
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("serve: subdomain %d %s: %w", res.i,
					map[bool]string{true: "refresh", false: "build"}[jb.node != nil], res.err)
			}
		}
	}
	return subs, firstErr
}

// runShardSolve runs the outer Schwarz-preconditioned CG for each
// column, with panic isolation, outside the head lock. The operator is
// the request's own matrix (bitwise equal to h.fine by the ensure
// phase), read only for the duration of the call. A canceled or failed
// solve returns no solutions — a partial CG iterate is never an answer.
func (s *Service) runShardSolve(ctx context.Context, a *sparse.Matrix, bs [][]float64, p *schwarz.Preconditioner, st *RequestStats) (xs [][]float64, rst RequestStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.m.panics.Add(1)
			xs, rst, err = nil, *st, fmt.Errorf("serve: %w: %v", ErrPanic, r)
		}
	}()
	if err := s.fault(FaultSolve, ctx); err != nil {
		return nil, *st, err
	}
	st.Batched = len(bs)
	ws := krylov.NewWorkspace(a.Rows)
	failed := 0
	var firstErr error
	for _, b := range bs {
		x := make([]float64, a.Rows)
		cst, serr := krylov.CGCtx(ctx, s.rt, a, b, x, s.cfg.Tol, s.cfg.MaxIter, p, ws, s.cfg.Health)
		if serr != nil && errors.Is(serr, krylov.ErrCanceled) {
			return nil, *st, fmt.Errorf("serve: solve canceled: %w", serr)
		}
		st.Columns = append(st.Columns, cst)
		if !cst.Converged {
			failed++
			if firstErr == nil {
				firstErr = serr
			}
		}
		xs = append(xs, x)
	}
	s.m.batchSolves.Add(1)
	s.m.batchedRHS.Add(int64(len(bs)))
	if failed > 0 {
		// Wrap the first column's classified krylov error so callers
		// (and the escalation ladder) see the failure class, not just a
		// count.
		return xs, *st, fmt.Errorf("serve: %d of %d requested right-hand side(s) did not converge: %w", failed, len(bs), firstErr)
	}
	return xs, *st, nil
}
