// Package leakcheck is a stdlib-only goroutine-leak assertion for
// tests: capture a baseline of live goroutines, run the scenario, then
// check that every goroutine born since has exited. Fault-injection
// stress tests lean on it — a batch follower stranded on a condition
// variable or a forgotten context.AfterFunc shows up here as a leaked
// stack, with the full trace in the failure message.
//
// Identification is by goroutine ID from the runtime stack dump, so
// pre-existing goroutines (the test runner, timers) never false-
// positive, and an allowlist covers goroutines that are designed to
// outlive any one test — the process-wide solver worker pool above all.
// A settle loop re-checks for a short grace period before failing:
// goroutines that have logically finished may not have been descheduled
// yet when the test body returns.
package leakcheck

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// defaultAllow matches goroutines that legitimately outlive a test; a
// dump block containing any of these substrings is never a leak.
var defaultAllow = []string{
	// The process-wide solver worker pool: spawned lazily on first
	// parallel kernel, never shut down by design.
	"mis2go/internal/par.ensureWorkers",
	// Test-runner machinery (parallel subtests, timeout watchdogs).
	"testing.(*T).Run",
	"testing.runTests",
	"testing.(*M).",
}

// settleTimeout bounds how long Check waits for fresh goroutines to
// finish winding down before declaring them leaked.
const settleTimeout = 2 * time.Second

// Baseline is the set of goroutines alive when Capture was called.
type Baseline struct {
	ids map[int64]bool
}

// Capture records the currently live goroutines. Take it before the
// scenario under test starts anything.
func Capture() Baseline {
	ids := make(map[int64]bool)
	for _, g := range stacks() {
		ids[g.id] = true
	}
	return Baseline{ids: ids}
}

// Check fails t when goroutines that are not in the baseline and not
// allowlisted are still alive after the settle period. allow entries
// are extra substring patterns on top of the built-in allowlist.
func Check(t testing.TB, base Baseline, allow ...string) {
	t.Helper()
	patterns := append(append([]string(nil), defaultAllow...), allow...)
	deadline := time.Now().Add(settleTimeout)
	for {
		leaked := leakedSince(base, patterns)
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			var sb strings.Builder
			for _, g := range leaked {
				fmt.Fprintf(&sb, "\n--- leaked goroutine %d ---\n%s\n", g.id, g.dump)
			}
			t.Errorf("leakcheck: %d goroutine(s) leaked:%s", len(leaked), sb.String())
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// goroutine is one parsed block of the all-goroutine stack dump.
type goroutine struct {
	id   int64
	dump string
}

func leakedSince(base Baseline, patterns []string) []goroutine {
	var leaked []goroutine
outer:
	for _, g := range stacks() {
		if base.ids[g.id] {
			continue
		}
		for _, p := range patterns {
			if strings.Contains(g.dump, p) {
				continue outer
			}
		}
		leaked = append(leaked, g)
	}
	return leaked
}

// stacks dumps and parses all goroutine stacks. The calling goroutine
// is excluded — it is alive by definition, and during Capture it may be
// a different goroutine than during Check (subtests run on their own).
func stacks() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var gs []goroutine
	for i, block := range strings.Split(string(buf), "\n\n") {
		id, ok := parseHeader(block)
		if !ok {
			continue
		}
		if i == 0 {
			// First block is the goroutine running runtime.Stack: the
			// checker itself, never a leak candidate.
			continue
		}
		gs = append(gs, goroutine{id: id, dump: block})
	}
	return gs
}

// parseHeader extracts the goroutine ID from a dump block's first line,
// which reads "goroutine 123 [running]:".
func parseHeader(block string) (int64, bool) {
	const prefix = "goroutine "
	if !strings.HasPrefix(block, prefix) {
		return 0, false
	}
	rest := block[len(prefix):]
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return 0, false
	}
	id, err := strconv.ParseInt(rest[:sp], 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}
