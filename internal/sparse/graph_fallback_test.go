package sparse

import (
	"testing"

	"mis2go/internal/par"
)

// TestGraphUnsortedRowsFallback pins the seed behavior: Graph() must
// tolerate hand-built matrices whose rows are unsorted or contain
// duplicates (valid for SpMV, rejected by Validate), falling back to
// the edge-list construction instead of merging garbage.
func TestGraphUnsortedRowsFallback(t *testing.T) {
	// 3x3 matrix with row 0 unsorted: entries (0,2), (0,1).
	a := &Matrix{
		Rows: 3, Cols: 3,
		RowPtr: []int{0, 2, 4, 6},
		Col:    []int32{2, 1, 0, 1, 0, 2},
		Val:    []float64{1, 1, 1, 2, 1, 3},
	}
	g := a.GraphWith(par.New(2))
	if err := g.Validate(); err != nil {
		t.Fatalf("graph from unsorted matrix is invalid: %v", err)
	}
	// The symmetrized structure must match the sorted equivalent.
	sorted := &Matrix{
		Rows: 3, Cols: 3,
		RowPtr: []int{0, 2, 4, 6},
		Col:    []int32{1, 2, 0, 1, 0, 2},
		Val:    []float64{1, 1, 1, 2, 1, 3},
	}
	want := sorted.GraphWith(par.New(2))
	if g.N != want.N || len(g.Col) != len(want.Col) {
		t.Fatalf("structure mismatch: |V|=%d nnz=%d, want |V|=%d nnz=%d", g.N, len(g.Col), want.N, len(want.Col))
	}
	for v := 0; v <= g.N; v++ {
		if g.RowPtr[v] != want.RowPtr[v] {
			t.Fatalf("RowPtr[%d] = %d, want %d", v, g.RowPtr[v], want.RowPtr[v])
		}
	}
	for k := range g.Col {
		if g.Col[k] != want.Col[k] {
			t.Fatalf("Col[%d] = %d, want %d", k, g.Col[k], want.Col[k])
		}
	}
}
