package gs

import (
	"math"
	"testing"

	"mis2go/internal/coarsen"
	"mis2go/internal/gen"
	"mis2go/internal/sparse"
)

func TestDiagonalMatrixSolvedInOneSweep(t *testing.T) {
	// For a diagonal matrix, one GS sweep computes the exact solution.
	n := 50
	a := sparse.Identity(n)
	for i := range a.Val {
		a.Val[i] = float64(i + 2)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i) - 10
	}
	m, err := NewPoint(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	m.Apply(b, x, 1, false)
	for i := range x {
		want := b[i] / float64(i+2)
		if math.Abs(x[i]-want) > 1e-15 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want)
		}
	}
	if m.NumColors != 1 {
		t.Fatalf("diagonal matrix needs 1 color, used %d", m.NumColors)
	}
}

func TestResidualDecreasesMonotonically(t *testing.T) {
	a, b, _ := testProblem(12, 12)
	agg := coarsen.MIS2Aggregation(a.Graph(), coarsen.Options{})
	for _, build := range []func() (*Multicolor, error){
		func() (*Multicolor, error) { return NewPoint(a, 0) },
		func() (*Multicolor, error) { return NewCluster(a, agg, 0) },
	} {
		m, err := build()
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, a.Rows)
		prev := residual(a, b, x)
		for sweep := 0; sweep < 10; sweep++ {
			m.Apply(b, x, 1, true)
			r := residual(a, b, x)
			if r > prev*1.0000001 {
				t.Fatalf("sweep %d increased residual: %g -> %g", sweep, prev, r)
			}
			prev = r
		}
	}
}

func TestClusterFewerColorsThanPointTimesDegree(t *testing.T) {
	// The cluster graph is much smaller; its palette stays modest.
	g := gen.Laplace3D(12, 12, 12)
	a := gen.Laplacian(g, 0.1)
	agg := coarsen.MIS2Aggregation(g, coarsen.Options{})
	cl, err := NewCluster(a, agg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumColors > 40 {
		t.Fatalf("cluster coloring used %d colors", cl.NumColors)
	}
}

func TestSequentialSymmetricMatchesManual(t *testing.T) {
	// SGS = forward then backward; verify against explicit loops.
	a, b, _ := testProblem(6, 6)
	n := a.Rows
	x1 := make([]float64, n)
	if err := Sequential(a, b, x1, 1, true); err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, n)
	d := a.Diagonal()
	relax := func(i int) {
		s := b[i]
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			if int(a.Col[q]) != i {
				s -= a.Val[q] * x2[a.Col[q]]
			}
		}
		x2[i] = s / d[i]
	}
	for i := 0; i < n; i++ {
		relax(i)
	}
	for i := n - 1; i >= 0; i-- {
		relax(i)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-14 {
			t.Fatalf("x[%d]: %g vs %g", i, x1[i], x2[i])
		}
	}
}

func TestClusterRowsAscendingWithinCluster(t *testing.T) {
	a, _, _ := testProblem(10, 10)
	agg := coarsen.MIS2Aggregation(a.Graph(), coarsen.Options{})
	m, err := NewCluster(a, agg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k, rows := range m.clusterRows {
		for i := 1; i < len(rows); i++ {
			if rows[i-1] >= rows[i] {
				t.Fatalf("cluster %d rows not ascending", k)
			}
		}
	}
}

func TestSameColorClustersShareNoEntries(t *testing.T) {
	// The correctness precondition for parallel cluster updates: two
	// same-colored clusters must have no matrix entries between them.
	a, _, _ := testProblem(12, 12)
	g := a.Graph()
	agg := coarsen.MIS2Aggregation(g, coarsen.Options{})
	m, err := NewCluster(a, agg, 0)
	if err != nil {
		t.Fatal(err)
	}
	colorOf := make([]int32, agg.NumAggregates)
	for c, set := range m.groups {
		for _, k := range set {
			colorOf[k] = int32(c)
		}
	}
	for v := int32(0); int(v) < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			cv, cw := agg.Labels[v], agg.Labels[w]
			if cv != cw && colorOf[cv] == colorOf[cw] {
				t.Fatalf("adjacent clusters %d and %d share color %d", cv, cw, colorOf[cv])
			}
		}
	}
}

func TestApplyZeroSweepsIsNoop(t *testing.T) {
	a, b, _ := testProblem(5, 5)
	m, err := NewPoint(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows)
	m.Apply(b, x, 0, true)
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero sweeps modified x")
		}
	}
}

func TestSequentialVsMulticolorConvergeToSameSolution(t *testing.T) {
	a, b, xTrue := testProblem(10, 10)
	n := a.Rows
	xs := make([]float64, n)
	if err := Sequential(a, b, xs, 300, true); err != nil {
		t.Fatal(err)
	}
	m, err := NewPoint(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	xm := make([]float64, n)
	m.Apply(b, xm, 300, true)
	for i := range xTrue {
		if math.Abs(xs[i]-xTrue[i]) > 1e-6 || math.Abs(xm[i]-xTrue[i]) > 1e-6 {
			t.Fatalf("solutions diverge at %d: seq %g mc %g want %g", i, xs[i], xm[i], xTrue[i])
		}
	}
}

func TestSOROmega(t *testing.T) {
	a, b, _ := testProblem(14, 14)
	m, err := NewPoint(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Invalid omegas rejected.
	if m.SetOmega(0) == nil || m.SetOmega(2) == nil || m.SetOmega(-1) == nil {
		t.Fatal("invalid omega accepted")
	}
	// SOR with a good omega converges at least as fast as plain GS in
	// residual after a fixed sweep budget on this Poisson problem.
	xGS := make([]float64, a.Rows)
	m2, _ := NewPoint(a, 0)
	m2.Apply(b, xGS, 30, false)
	rGS := residual(a, b, xGS)

	if err := m.SetOmega(1.5); err != nil {
		t.Fatal(err)
	}
	xSOR := make([]float64, a.Rows)
	m.Apply(b, xSOR, 30, false)
	rSOR := residual(a, b, xSOR)
	if rSOR > rGS {
		t.Fatalf("SOR(1.5) residual %g worse than GS %g", rSOR, rGS)
	}
}

func TestSOROmegaOneIsPlainGS(t *testing.T) {
	a, b, _ := testProblem(8, 8)
	m1, _ := NewPoint(a, 0)
	m2, _ := NewPoint(a, 0)
	if err := m2.SetOmega(1.0); err != nil {
		t.Fatal(err)
	}
	x1 := make([]float64, a.Rows)
	x2 := make([]float64, a.Rows)
	m1.Apply(b, x1, 3, true)
	m2.Apply(b, x2, 3, true)
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatal("omega=1 differs from default")
		}
	}
}
