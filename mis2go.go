// Package mis2go is a parallel, deterministic implementation of the
// distance-2 maximal independent set (MIS-2) algorithm and the MIS-2-based
// graph coarsening schemes of Kelley & Rajamanickam, "Parallel, Portable
// Algorithms for Distance-2 Maximal Independent Set and Graph Coarsening"
// (IPDPS 2022), together with the solver stack the paper evaluates them
// in: smoothed-aggregation algebraic multigrid and point/cluster
// multicolor Gauss-Seidel preconditioning.
//
// The package is a facade over the internal implementation packages; it
// re-exports the types and entry points a downstream user needs:
//
//	g := mis2go.Laplace3D(64, 64, 64)
//	res := mis2go.MIS2(g, mis2go.MISOptions{})
//	agg := mis2go.Aggregate(g, 0)           // Algorithm 3
//	a := mis2go.GraphLaplacian(g, 0.05)
//	h, _ := mis2go.NewAMG(a, mis2go.AMGOptions{})
//	stats, _ := mis2go.SolveCG(a, b, x, 1e-10, 500, h, 0)
//
// All algorithms are deterministic: results are identical for every
// worker count and across runs.
package mis2go

import (
	"io"

	"mis2go/internal/amg"
	"mis2go/internal/coarsen"
	"mis2go/internal/gen"
	"mis2go/internal/graph"
	"mis2go/internal/gs"
	"mis2go/internal/hash"
	"mis2go/internal/krylov"
	"mis2go/internal/mis"
	"mis2go/internal/mmio"
	"mis2go/internal/order"
	"mis2go/internal/par"
	"mis2go/internal/partition"
	"mis2go/internal/schwarz"
	"mis2go/internal/serve"
	"mis2go/internal/sparse"
)

// Graph is an undirected graph in CSR form. See NewGraph and the
// generator functions.
type Graph = graph.CSR

// Edge is an undirected edge used by NewGraph.
type Edge = graph.Edge

// NewGraph builds a graph on n vertices from an undirected edge list;
// duplicate edges and self-loops are dropped.
func NewGraph(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// Laplace3D generates the graph of a 3D grid with a 7-point stencil
// (the Galeri Laplace3D problem of the paper's experiments).
func Laplace3D(nx, ny, nz int) *Graph { return gen.Laplace3D(nx, ny, nz) }

// Laplace2D generates the graph of a 2D grid with a 5-point stencil.
func Laplace2D(nx, ny int) *Graph { return gen.Laplace2D(nx, ny) }

// Elasticity3D generates a 27-point stencil grid with dof unknowns per
// point (the Galeri Elasticity3D problem; the paper uses dof=3).
func Elasticity3D(nx, ny, nz, dof int) *Graph { return gen.Elasticity3D(nx, ny, nz, dof) }

// RandomFEM generates a deterministic irregular FEM-like mesh with the
// given average degree.
func RandomFEM(nx, ny, nz int, avgDeg float64, seed uint64) *Graph {
	return gen.RandomFEM(nx, ny, nz, avgDeg, seed)
}

// HashKind selects the pseudo-random priority scheme of the MIS-2
// algorithm (paper Table I).
type HashKind = hash.Kind

// Priority schemes: HashXorStar is the production default.
const (
	HashXorStar = hash.XorStar
	HashXor     = hash.Xor
	HashFixed   = hash.Fixed
)

// MISOptions configures MIS2; the zero value is the production
// configuration (xorshift* priorities, all optimizations, all cores).
type MISOptions = mis.Options

// MISResult reports the independent set and the iteration count.
type MISResult = mis.Result

// MIS2 computes a distance-2 maximal independent set of g using the
// paper's Algorithm 1 with all four optimizations. Deterministic.
func MIS2(g *Graph, opt MISOptions) MISResult { return mis.MIS2(g, opt) }

// VerifyMIS2 checks distance-2 independence and maximality of set in g.
func VerifyMIS2(g *Graph, set []int32) error { return mis.CheckMIS2(g, set) }

// Aggregation assigns every vertex to an aggregate (cluster).
type Aggregation = coarsen.Aggregation

// CoarsenBasic runs Algorithm 2 (Bell et al.'s simple MIS-2 coarsening).
func CoarsenBasic(g *Graph, threads int) Aggregation {
	return coarsen.Basic(g, coarsen.Options{Threads: threads})
}

// Aggregate runs Algorithm 3, the paper's two-phase MIS-2 aggregation
// with coupling-based cleanup (the scheme shipped in Kokkos Kernels).
func Aggregate(g *Graph, threads int) Aggregation {
	return coarsen.MIS2Aggregation(g, coarsen.Options{Threads: threads})
}

// CoarseGraph collapses g according to an aggregation: one coarse vertex
// per aggregate.
func CoarseGraph(g *Graph, agg Aggregation) *Graph { return coarsen.CoarseGraph(g, agg) }

// Matrix is a CSR sparse matrix.
type Matrix = sparse.Matrix

// Operator is the format-independent view of a sparse operator: the
// kernels the solver stack needs (SpMV and its fused variants, SpMM,
// smoother sweeps), dispatched over the storage format. *Matrix (CSR)
// and the SELL-C-sigma conversion both implement it, with bit-identical
// results: switching formats never changes any answer, only speed.
type Operator = sparse.Operator

// OperatorFormat selects an operator storage layout for NewOperator and
// AMGOptions.Format.
type OperatorFormat = sparse.Format

// Operator formats: FormatAuto converts large regular matrices (fine
// mesh Laplacians) to SELL-C-sigma and keeps small or irregular ones on
// CSR; FormatCSR and FormatSELL force the choice.
const (
	FormatAuto = sparse.FormatAuto
	FormatCSR  = sparse.FormatCSR
	FormatSELL = sparse.FormatSELL
)

// NewOperator returns a's kernels in the requested format (the default
// SELL sort scope; see SELLOperator to tune it). Under FormatAuto an
// oversized SELL conversion silently falls back to CSR.
func NewOperator(a *Matrix, format OperatorFormat) (Operator, error) {
	return sparse.NewOperator(a, format, 0)
}

// OperatorPrecision selects the stored value precision of operators and
// AMG hierarchy levels (AMGOptions.Precision, ServeConfig.Precision).
// Only storage changes: every kernel takes float64 vectors and
// accumulates each row in float64 in the same left-to-right order, so
// f32 operators are bitwise deterministic at any worker count, and the
// outer CG/GMRES recurrences, dot products, and residual norms always
// run in float64.
type OperatorPrecision = sparse.Precision

// Operator value precisions: PrecisionF64 (the default) stores float64
// values, PrecisionF32 stores float32 everywhere, and PrecisionAuto
// keeps the finest level f64 and stores coarser levels (and their
// transfer operators) in f32.
const (
	PrecisionF64  = sparse.PrecisionF64
	PrecisionF32  = sparse.PrecisionF32
	PrecisionAuto = sparse.PrecisionAuto
)

// NewOperatorPrec is NewOperator with an explicit value precision.
// PrecisionAuto is rejected here — it is a per-level hierarchy policy,
// not a single-operator choice.
func NewOperatorPrec(a *Matrix, format OperatorFormat, prec OperatorPrecision) (Operator, error) {
	return sparse.NewOperatorPrec(a, format, 0, prec)
}

// SELLOperator converts a to SELL-C-sigma with an explicit sort scope
// sigma (0 = default): rows are stably length-sorted within windows of
// sigma rows so the chunked kernel pads nothing and streams linearly.
// A sigma that is negative or not a multiple of the chunk size is a
// descriptive error, never a silent clamp.
func SELLOperator(a *Matrix, sigma int) (Operator, error) {
	return sparse.NewSELL(a, sigma)
}

// RCMOrder computes the reverse Cuthill-McKee ordering of a's graph: a
// bandwidth-reducing permutation (perm[new] = old) that clusters each
// row's columns near the diagonal, keeping the kernels' gathers from x
// cache-resident. Use PermuteMatrix/PermuteVector to move a system into
// the ordering and InversePermuteVector to move solutions back.
func RCMOrder(a *Matrix) []int32 { return order.RCM(a.Graph()) }

// PermuteMatrix applies the symmetric permutation P·A·Pᵀ (perm[new] =
// old), producing a standard sorted-row CSR matrix.
func PermuteMatrix(a *Matrix, perm []int32) (*Matrix, error) { return order.PermuteMatrix(a, perm) }

// PermuteVector gathers src into the reordered numbering:
// dst[new] = src[perm[new]]. Malformed permutations (length mismatch,
// duplicate or out-of-range entries) return a descriptive error with
// dst untouched.
func PermuteVector(dst, src []float64, perm []int32) error {
	return order.PermuteVector(dst, src, perm)
}

// InversePermuteVector scatters src back to the original numbering —
// the exact (bitwise) inverse of PermuteVector, with the same
// permutation validation.
func InversePermuteVector(dst, src []float64, perm []int32) error {
	return order.InversePermuteVector(dst, src, perm)
}

// Bandwidth returns max |i-j| over stored entries of a — the quantity
// RCMOrder reduces.
func Bandwidth(a *Matrix) int { return order.Bandwidth(a) }

// GraphLaplacian builds the SPD graph Laplacian of g with a diagonal
// shift (shift > 0 makes it nonsingular).
func GraphLaplacian(g *Graph, shift float64) *Matrix { return gen.Laplacian(g, shift) }

// DirichletLaplacian builds the SPD constant-diagonal Laplacian
// A = diag*I - Adj(g): the Dirichlet-boundary stencil matrix of the
// paper's Galeri test problems (pass diag = interior stencil degree,
// e.g. 6 for Laplace3D).
func DirichletLaplacian(g *Graph, diag float64) *Matrix { return gen.DirichletLaplacian(g, diag) }

// WeightedGraphLaplacian is GraphLaplacian with deterministic
// pseudo-random edge weights.
func WeightedGraphLaplacian(g *Graph, shift float64, seed uint64) *Matrix {
	return gen.WeightedLaplacian(g, shift, seed)
}

// AMGOptions configures NewAMG; the zero value builds SA-AMG with
// Algorithm 3 aggregation, smoothed prolongators, and 2+2 damped-Jacobi
// sweeps, as in the paper's Table V setup.
type AMGOptions = amg.Options

// AMG is a smoothed-aggregation multigrid hierarchy; it implements
// Preconditioner via one V-cycle per application.
type AMG = amg.Hierarchy

// AMGSmoother selects the level relaxation of the V-cycle.
type AMGSmoother = amg.Smoother

// Level smoothers: damped Jacobi (the paper's Table V setup) and
// Chebyshev polynomials (the common MueLu alternative).
const (
	SmootherJacobi     = amg.SmootherJacobi
	SmootherChebyshev  = amg.SmootherChebyshev
	SmootherPointSGS   = amg.SmootherPointSGS
	SmootherClusterSGS = amg.SmootherClusterSGS
)

// NewAMG builds an SA-AMG hierarchy for the SPD matrix a.
func NewAMG(a *Matrix, opt AMGOptions) (*AMG, error) { return amg.Build(a, opt) }

// NewAMGSymbolic runs only the pattern-dependent (symbolic) half of AMG
// setup: graph extraction, MIS-2 aggregation, the tentative prolongator,
// and the cached SpGEMM plans for prolongator smoothing and the Galerkin
// product. Finish with h.BuildNumeric(a) before solving, and re-setup
// for a matrix with the same sparsity pattern and new values — a time
// step, Newton iteration, or parameter sweep — with h.Refresh(a2),
// which replays only the cheap numeric phase and errors cleanly if the
// pattern differs. A refreshed hierarchy is bitwise identical to a
// fresh NewAMG of the same matrix.
func NewAMGSymbolic(a *Matrix, opt AMGOptions) (*AMG, error) { return amg.BuildSymbolic(a, opt) }

// Preconditioner maps a residual to an approximate error (z = M^{-1} r).
type Preconditioner = krylov.Preconditioner

// BatchPreconditioner is implemented by preconditioners that apply
// M^{-1} to k residual columns in the interleaved multi-RHS layout in
// one pass (the Jacobi preconditioner does); SolveCGBatch uses the fast
// path when available and de-interleaves otherwise.
type BatchPreconditioner = krylov.BatchPreconditioner

// SolveStats reports iterations and the final relative residual.
type SolveStats = krylov.Stats

// SolveCG runs preconditioned conjugate gradient on the SPD system
// A x = b (m may be nil). threads 0 means all cores. a is any operator
// (a *Matrix, or a SELL conversion from NewOperator); every format
// yields bit-identical solves.
func SolveCG(a Operator, b, x []float64, tol float64, maxIter int, m Preconditioner, threads int) (SolveStats, error) {
	return krylov.CG(par.New(threads), a, b, x, tol, maxIter, m)
}

// SolveGMRES runs preconditioned restarted GMRES on A x = b.
func SolveGMRES(a Operator, b, x []float64, tol float64, maxIter, restart int, m Preconditioner, threads int) (SolveStats, error) {
	return krylov.GMRES(par.New(threads), a, b, x, tol, maxIter, restart, m)
}

// SpMM computes the batched multi-RHS product Y = A*X for k right-hand
// sides stored in the interleaved layout: the k values of row i are
// contiguous at [i*k : (i+1)*k]. One traversal of A serves all k
// columns (4- and 8-wide blocks take unrolled register kernels), so the
// matrix bytes — the dominant traffic of sparse iteration — are read
// once instead of k times. len(x) must be a.Cols*k, len(y) a.Rows*k.
func SpMM(a Operator, x, y []float64, k, threads int) {
	a.SpMM(par.New(threads), k, x, y)
}

// SolveCGBatch solves the k SPD systems A x_j = b_j simultaneously with
// conjugate gradient recurrences sharing one SpMM traversal of A per
// iteration. b and x use the interleaved layout of SpMM; the returned
// stats hold one entry per column. Columns converge (and freeze)
// independently; a zero column returns x_j = 0 in 0 iterations.
func SolveCGBatch(a Operator, b, x []float64, k int, tol float64, maxIter int, m Preconditioner, threads int) ([]SolveStats, error) {
	return krylov.CGBatch(par.New(threads), a, b, x, k, tol, maxIter, m)
}

// SolveCGBatchWith is SolveCGBatch reusing a caller-held workspace:
// repeated batch solves through the same workspace perform zero
// allocations. The returned stats slice is owned by the workspace and
// overwritten by its next batch solve.
func SolveCGBatchWith(a Operator, b, x []float64, k int, tol float64, maxIter int, m Preconditioner, threads int, ws *SolverWorkspace) ([]SolveStats, error) {
	return krylov.CGBatchWith(par.New(threads), a, b, x, k, tol, maxIter, m, ws)
}

// SolverWorkspace holds the scratch vectors of the Krylov solvers so
// that repeated solves allocate nothing. The zero value is ready for
// use; see NewSolverWorkspace to pre-size. Not safe for concurrent use.
type SolverWorkspace = krylov.Workspace

// NewSolverWorkspace returns a workspace pre-sized for n unknowns.
func NewSolverWorkspace(n int) *SolverWorkspace { return krylov.NewWorkspace(n) }

// SolveCGWith is SolveCG reusing a caller-held workspace: repeated
// solves through the same workspace perform zero allocations.
func SolveCGWith(a Operator, b, x []float64, tol float64, maxIter int, m Preconditioner, threads int, ws *SolverWorkspace) (SolveStats, error) {
	return krylov.CGWith(par.New(threads), a, b, x, tol, maxIter, m, ws)
}

// SolveGMRESWith is SolveGMRES reusing a caller-held workspace.
func SolveGMRESWith(a Operator, b, x []float64, tol float64, maxIter, restart int, m Preconditioner, threads int, ws *SolverWorkspace) (SolveStats, error) {
	return krylov.GMRESWith(par.New(threads), a, b, x, tol, maxIter, restart, m, ws)
}

// SolverHealth configures the per-iteration health guard of the Krylov
// solvers: divergence (residual blow-up past a factor of the best seen),
// stagnation (no relative progress over a window), and non-finite
// residuals each abort the iteration early with a classified error
// instead of burning the remaining iteration budget. The zero value
// uses conservative defaults; see DefaultSolverHealth.
type SolverHealth = krylov.Health

// DefaultSolverHealth returns a health guard with the default
// thresholds (divergence factor 1e4 over 5 iterations, stagnation after
// 100 iterations without 0.1% relative progress).
func DefaultSolverHealth() *SolverHealth { return krylov.DefaultHealth() }

// Classified solver failures. All satisfy errors.Is against the
// sentinel; ErrSolveQuarantined additionally unwraps from the
// *ServeQuarantinedError a SolveService returns while a poison pattern
// is quarantined.
var (
	// ErrSolveNotConverged: the iteration budget ran out while the
	// residual was still finite and moving.
	ErrSolveNotConverged = krylov.ErrNotConverged
	// ErrSolveDiverged: the residual blew up past the guard's factor of
	// the best residual seen, for the guard's window of iterations.
	ErrSolveDiverged = krylov.ErrDiverged
	// ErrSolveStagnated: the residual made no relative progress for the
	// guard's stagnation window.
	ErrSolveStagnated = krylov.ErrStagnated
	// ErrSolveNonFinite: a residual norm became NaN or Inf.
	ErrSolveNonFinite = krylov.ErrNonFinite
	// ErrSolveBreakdown: CG met a non-positive p^T A p (matrix not SPD).
	ErrSolveBreakdown = krylov.ErrBreakdown
	// ErrSolveQuarantined: the service's circuit breaker is failing this
	// matrix pattern fast after repeated numerical failures.
	ErrSolveQuarantined = serve.ErrQuarantined
)

// ServeQuarantinedError is the concrete quarantine rejection returned
// by a SolveService; RetryAfter reports the remaining cooldown.
type ServeQuarantinedError = serve.QuarantinedError

// SolveCGHealth is SolveCG with a per-iteration health guard: hg (nil
// means no guard, exactly SolveCG) classifies divergence, stagnation,
// and non-finite residuals into the ErrSolve* sentinels above. The
// guard reads only residual norms the convergence test already
// computes, so guarded and unguarded successful solves are bitwise
// identical.
func SolveCGHealth(a Operator, b, x []float64, tol float64, maxIter int, m Preconditioner, threads int, hg *SolverHealth) (SolveStats, error) {
	return krylov.CGCtx(nil, par.New(threads), a, b, x, tol, maxIter, m, nil, hg)
}

// SolveService is a concurrent solve service over the AMG+CG stack: an
// LRU cache of hierarchies keyed by sparsity-pattern fingerprint (first
// request per pattern builds, same-pattern/new-values requests pay only
// the numeric Refresh, identical-values requests pay nothing), a small
// batching window coalescing same-operator requests into one batched CG
// call, per-pattern single-flight locking, and bounded in-flight
// admission. Safe for concurrent use by any number of goroutines;
// served results are bitwise identical to sequential single-caller
// solves. See NewSolveService.
type SolveService = serve.Service

// ServeConfig configures NewSolveService; the zero value serves with
// defaults (1e-8 tolerance, 8 cached hierarchies, 200µs batching
// window, 8-wide batches, 4×GOMAXPROCS in-flight requests).
type ServeConfig = serve.Config

// ServeRequestStats reports what one served request paid (cache
// outcome, coalesced batch width) and its per-column solver stats.
type ServeRequestStats = serve.RequestStats

// ServeMetrics is a snapshot of a SolveService's counters.
type ServeMetrics = serve.Metrics

// ServeOutcome labels what a request paid at the hierarchy cache.
type ServeOutcome = serve.Outcome

// Cache outcomes of a served request.
const (
	ServeOutcomeBuild     = serve.OutcomeBuild
	ServeOutcomeRefresh   = serve.OutcomeRefresh
	ServeOutcomeReuse     = serve.OutcomeReuse
	ServeOutcomeCollision = serve.OutcomeCollision
)

// NewSolveService returns a concurrent solve service. Submit requests
// with Solve (one right-hand side) or SolveBatch (several against one
// matrix); read counters with Metrics.
func NewSolveService(cfg ServeConfig) *SolveService { return serve.New(cfg) }

// GaussSeidel is a multicolor Gauss-Seidel operator (point or cluster).
type GaussSeidel = gs.Multicolor

// NewPointSGS sets up point multicolor symmetric Gauss-Seidel for a.
func NewPointSGS(a *Matrix, threads int) (*GaussSeidel, error) { return gs.NewPoint(a, threads) }

// NewClusterSGS sets up cluster multicolor symmetric Gauss-Seidel
// (Algorithm 4) for a, using Algorithm 3 to form the clusters.
func NewClusterSGS(a *Matrix, threads int) (*GaussSeidel, error) {
	agg := coarsen.MIS2Aggregation(a.Graph(), coarsen.Options{Threads: threads})
	return gs.NewCluster(a, agg, threads)
}

// NewClusterSGSFrom sets up cluster multicolor Gauss-Seidel from a
// caller-provided aggregation.
func NewClusterSGSFrom(a *Matrix, agg Aggregation, threads int) (*GaussSeidel, error) {
	return gs.NewCluster(a, agg, threads)
}

// MISK computes a distance-k maximal independent set: Algorithm 1 for
// k == 2 and the Bell/Dalton/Olson general-k propagation otherwise.
// Deterministic for all k.
func MISK(g *Graph, k, threads int) MISResult {
	if k == 2 {
		return mis.MIS2(g, mis.Options{Threads: threads})
	}
	return mis.BellMISK(g, mis.BellOptions{K: k, Rehash: true, Threads: threads})
}

// VerifyMISK checks distance-k independence and maximality of set in g
// (test-scale graphs; O(|set|·(V+E)) time).
func VerifyMISK(g *Graph, set []int32, k int) error { return mis.CheckMISK(g, set, k) }

// JacobiPreconditioner returns the diagonal preconditioner for a.
func JacobiPreconditioner(a Operator) (Preconditioner, error) { return krylov.Jacobi(a) }

// PartitionOptions configures Bisect.
type PartitionOptions = partition.Options

// PartitionResult reports a graph bisection.
type PartitionResult = partition.Result

// Partitioning policy re-exports: coarsening scheme of the multilevel
// bisection (the paper's future-work application).
const (
	PartitionMIS2 = partition.MIS2Policy
	PartitionHEM  = partition.HEMPolicy
)

// Bisect splits g into two balanced parts with multilevel partitioning,
// coarsening by MIS-2 aggregation (or HEM via PartitionOptions.Policy).
func Bisect(g *Graph, opt PartitionOptions) (PartitionResult, error) {
	return partition.Partition(g, opt)
}

// KWayResult reports a k-way partition from PartitionKWay.
type KWayResult = partition.KWayResult

// PartitionKWay splits g into k parts (k a power of two) by recursive
// multilevel bisection.
func PartitionKWay(g *Graph, k int, opt PartitionOptions) (KWayResult, error) {
	return partition.KWay(g, k, opt)
}

// SchwarzOptions configures NewSchwarz. Note Subdomains is rounded up
// to a power of two and Overlap 0 defaults to 1 unless OverlapSet marks
// it explicit; the effective configuration is reported by
// Schwarz.Stats.
type SchwarzOptions = schwarz.Options

// SchwarzStats reports the effective configuration of a Schwarz
// preconditioner: requested vs rounded subdomain counts, overlap after
// defaulting, and the local/coarse solver kinds.
type SchwarzStats = schwarz.Stats

// Schwarz is a two-level overlapping additive Schwarz preconditioner:
// subdomains from MIS-2-coarsened multilevel partitioning, each solved
// by dense LU or a local AMG hierarchy (SchwarzOptions.
// LocalAMGThreshold), a coarse space from MIS-2 aggregation (the
// domain-decomposition use case the paper's introduction cites).
// Supports numeric-only Refresh for same-pattern value updates and
// context-aware application; subdomain applies fan across the worker
// pool deterministically.
type Schwarz = schwarz.Preconditioner

// NewSchwarz builds the additive Schwarz preconditioner for a. Only CSR
// operators (*Matrix) are accepted: subdomain extraction needs the
// entry arrays, which apply-only formats do not expose.
func NewSchwarz(a Operator, opt SchwarzOptions) (*Schwarz, error) { return schwarz.New(a, opt) }

// SolveSharded solves A x = b with the domain-decomposed solver a
// sharded SolveService uses: a Schwarz-preconditioned CG over a
// partition of a's graph. It is the sequential single-caller reference
// for served sharded solves — a SolveService with ShardThreshold set
// returns bitwise-identical solutions for the same system and options
// (SchwarzOptions{Subdomains: cfg.ShardSubdomains, Threads:
// cfg.Threads}), at any worker count and cache state.
func SolveSharded(a *Matrix, b []float64, tol float64, maxIter int, opt SchwarzOptions) ([]float64, SolveStats, error) {
	p, err := schwarz.New(a, opt)
	if err != nil {
		return nil, SolveStats{}, err
	}
	x := make([]float64, a.Rows)
	st, err := krylov.CGWith(par.New(opt.Threads), a, b, x, tol, maxIter, p, nil)
	return x, st, err
}

// AggregationQuality summarizes an aggregation: coarsening rate, size
// spread, and the fraction of edges crossing aggregates.
type AggregationQuality = coarsen.QualityStats

// QualityOf computes AggregationQuality for an aggregation of g.
func QualityOf(g *Graph, agg Aggregation) AggregationQuality { return coarsen.Quality(g, agg) }

// ReadMatrixMarket parses a Matrix Market stream into a sparse matrix
// (e.g. a SuiteSparse .mtx file for the paper's real test matrices).
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return mmio.ReadMatrix(r) }

// ReadGraphMatrixMarket parses a Matrix Market stream as an undirected
// graph (pattern, symmetrized, diagonal dropped).
func ReadGraphMatrixMarket(r io.Reader) (*Graph, error) { return mmio.ReadGraph(r) }

// WriteMatrixMarket writes a matrix in coordinate real general format.
func WriteMatrixMarket(w io.Writer, m *Matrix) error { return mmio.WriteMatrix(w, m) }
