// Package par models the repo's parallel runtime for hotalloc
// fixtures: closures handed directly to it are the sanctioned
// participant idiom and are exempt from the closure check.
package par

// Runtime mirrors the method-call form rt.For(n, body).
type Runtime struct{}

// For runs body over [0, n).
func (r *Runtime) For(n int, body func(lo, hi int)) { body(0, n) }

// ForWith mirrors the free-function form with setup/teardown closures.
func ForWith(r *Runtime, n int, setup func() []float64, body func(lo, hi int, s []float64), teardown func([]float64)) {
	s := setup()
	body(0, n, s)
	if teardown != nil {
		teardown(s)
	}
}
